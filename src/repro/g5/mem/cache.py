"""Classic set-associative cache model (gem5's ``BaseCache`` analogue).

Timing is modelled through the event queue; data correctness is handled
functionally at the memory controller (see :mod:`repro.g5.mem.dram`), so
packets here carry addresses and sizes only.  The cache supports both the
atomic and timing protocols, write-allocate + write-back policy, LRU
replacement, and MSHR merging of outstanding misses.

Host instrumentation: every lookup/fill/eviction reports the simulator
function executed plus the host address of the tag-store slice touched,
so the *host* data-cache behaviour of running this simulator emerges from
the tag-store layout — one of the mechanisms behind the paper's claim
that gem5's data set is small and cache-friendly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...events import CallbackEvent, SimObject
from .packet import MemCmd, Packet, writeback
from .port import RequestPort, ResponsePort


@dataclass(frozen=True)
class CacheParams:
    """Geometry and latency parameters of one cache."""

    size: int
    assoc: int
    line_size: int = 64
    tag_latency: int = 1       # cycles to check tags
    data_latency: int = 1      # extra cycles to return data on a hit
    response_latency: int = 1  # cycles to forward a fill upward
    mshrs: int = 8
    write_back: bool = True
    prefetcher: str = "none"   # "none" or "nextline"

    def __post_init__(self) -> None:
        if self.size <= 0 or self.assoc <= 0 or self.line_size <= 0:
            raise ValueError("cache size/assoc/line_size must be positive")
        if self.size % (self.assoc * self.line_size):
            raise ValueError(
                f"cache size {self.size} not divisible by assoc*line "
                f"({self.assoc}*{self.line_size})")
        if self.prefetcher not in ("none", "nextline"):
            raise ValueError(
                f"unknown prefetcher {self.prefetcher!r}; choose "
                f"'none' or 'nextline'")

    @property
    def n_sets(self) -> int:
        return self.size // (self.assoc * self.line_size)


class _Line:
    """One tag-store entry."""

    __slots__ = ("tag", "valid", "dirty", "lru", "prefetched")

    def __init__(self) -> None:
        self.tag = -1
        self.valid = False
        self.dirty = False
        self.lru = 0
        self.prefetched = False


class _MSHR:
    """Miss-status holding register: one outstanding line fill."""

    __slots__ = ("line_addr", "targets", "is_prefetch")

    def __init__(self, line_addr: int) -> None:
        self.line_addr = line_addr
        self.targets: list[Packet] = []
        self.is_prefetch = False


class Cache(SimObject):
    """A single cache level."""

    def __init__(self, name: str, parent, params: CacheParams) -> None:
        super().__init__(name, parent)
        self.params = params
        self.cpu_side = ResponsePort("cpu_side", self)
        self.mem_side = RequestPort("mem_side", self)
        # Snooping bus membership (multi-core L1 data caches only); set
        # by CoherenceDomain.attach.  None keeps every hook dormant.
        self.coherence = None
        self._sets = [[_Line() for _ in range(params.assoc)]
                      for _ in range(params.n_sets)]
        self._lru_clock = 0
        self._mshrs: dict[int, _MSHR] = {}
        # Latencies in ticks, precomputed for the packet-free fast path.
        self._tag_ticks = self.cycles(params.tag_latency)
        self._data_ticks = self.cycles(params.data_latency)
        self._resp_ticks = self.cycles(params.response_latency)
        # Host-side identity of this instance's tag store: ~10 bytes/line of
        # metadata, mirroring gem5's tag arrays.
        self._tags_host_base = self.host_alloc(
            max(16, params.n_sets * params.assoc * 10), "tagstore")
        self._fn_access = self.host_fn("BaseCache::access")
        self._fn_recv_timing = self.host_fn("BaseCache::recvTimingReq")
        self._fn_fill = self.host_fn("BaseCache::handleFill")
        self._fn_evict = self.host_fn("Cache::evictBlock")
        self._fn_wb = self.host_fn("Cache::writebackBlk")
        self._fn_mshr = self.host_fn("MSHR::allocateTarget")
        self._fn_resp = self.host_fn("BaseCache::recvTimingResp")
        self._fn_atomic = self.host_fn("Cache::recvAtomic")
        self._fn_prefetch = self.host_fn("Prefetcher::notify")

    def reg_stats(self) -> None:
        stats = self.stats
        self.stat_hits = stats.scalar("overallHits", "hits for all accesses")
        self.stat_misses = stats.scalar("overallMisses", "misses for all accesses")
        self.stat_accesses = stats.formula(
            "overallAccesses", lambda: self.stat_hits.value()
            + self.stat_misses.value(), "total accesses")
        self.stat_miss_rate = stats.formula(
            "overallMissRate",
            lambda: self.stat_misses.value() / max(1, self.stat_hits.value()
                                                   + self.stat_misses.value()),
            "miss rate for all accesses")
        self.stat_writebacks = stats.scalar("writebacks", "dirty evictions")
        self.stat_mshr_merges = stats.scalar(
            "mshrMerges", "misses merged into an outstanding MSHR")
        self.stat_fills = stats.scalar("fills", "lines filled")
        self.stat_prefetches = stats.scalar(
            "prefetchesIssued", "prefetch fills issued")
        self.stat_prefetch_useful = stats.scalar(
            "prefetchUseful", "demand hits on prefetched lines")
        self.stat_snoops = stats.scalar(
            "snoops", "coherence probes received from peer caches")
        self.stat_snoop_invalidates = stats.scalar(
            "snoopInvalidates", "resident lines invalidated by snoops")
        self.stat_snoop_writebacks = stats.scalar(
            "snoopWritebacks", "dirty lines demoted (M->S) by snoops")

    # ------------------------------------------------------------------
    # tag-store helpers
    # ------------------------------------------------------------------
    def _index(self, line_addr: int) -> int:
        return (line_addr // self.params.line_size) % self.params.n_sets

    def _set_host_addr(self, set_index: int) -> int:
        return self._tags_host_base + set_index * self.params.assoc * 10

    def _lookup(self, line_addr: int,
                demand: bool = True) -> Optional[_Line]:
        set_index = self._index(line_addr)
        self.host_record(self._fn_access, self._set_host_addr(set_index))
        for line in self._sets[set_index]:
            if line.valid and line.tag == line_addr:
                self._lru_clock += 1
                line.lru = self._lru_clock
                if demand and line.prefetched:
                    line.prefetched = False
                    self.stat_prefetch_useful.inc()
                    # Chain: a hit on a prefetched line keeps the stream
                    # running ahead (standard next-line behaviour).
                    if self._timing_mode:
                        self._maybe_prefetch_timing(line_addr)
                    else:
                        self._maybe_prefetch_atomic(line_addr)
                return line
        return None

    def _fill(self, line_addr: int, prefetched: bool = False) -> None:
        """Insert ``line_addr``; evict (and maybe write back) the LRU victim."""
        set_index = self._index(line_addr)
        self.host_record(self._fn_fill, self._set_host_addr(set_index))
        victim = min(self._sets[set_index], key=lambda line: line.lru)
        if victim.valid:
            self.host_record(self._fn_evict, self._set_host_addr(set_index))
            if victim.dirty and self.params.write_back:
                self.stat_writebacks.inc()
                self.host_record(self._fn_wb)
                if self._fast_mode:
                    self.mem_side.send_atomic_wb_fast(
                        victim.tag, self.params.line_size)
                elif self._timing_mode:
                    self.mem_side.send_timing_req(
                        writeback(victim.tag, self.params.line_size))
                else:
                    self.mem_side.send_atomic(
                        writeback(victim.tag, self.params.line_size))
        self._lru_clock += 1
        victim.tag = line_addr
        victim.valid = True
        victim.dirty = False
        victim.lru = self._lru_clock
        victim.prefetched = prefetched
        self.stat_fills.inc()
        if self.coherence is not None:
            # I -> S: peer M copies demote (and count a writeback).
            self.coherence.snoop_read(self, line_addr)

    def _maybe_prefetch_atomic(self, line_addr: int) -> None:
        """Next-line prefetch after an atomic demand miss (off the
        critical path: its latency is not charged to the request)."""
        if self.params.prefetcher != "nextline":
            return
        next_line = line_addr + self.params.line_size
        if self.contains(next_line):
            return
        self.host_record(self._fn_prefetch)
        self.stat_prefetches.inc()
        fill_pkt = Packet(MemCmd.READ_REQ, next_line, self.params.line_size)
        self.mem_side.send_atomic(fill_pkt)
        self._fill(next_line, prefetched=True)

    def _maybe_prefetch_timing(self, line_addr: int) -> None:
        """Next-line prefetch after a timing demand miss."""
        if self.params.prefetcher != "nextline":
            return
        next_line = line_addr + self.params.line_size
        if self.contains(next_line) or next_line in self._mshrs:
            return
        self.host_record(self._fn_prefetch)
        self.stat_prefetches.inc()
        mshr = _MSHR(next_line)
        mshr.is_prefetch = True
        self._mshrs[next_line] = mshr
        fill_pkt = Packet(MemCmd.READ_REQ, next_line, self.params.line_size)
        fill_pkt.push_state(self)
        self.mem_side.send_timing_req(fill_pkt)

    def contains(self, addr: int) -> bool:
        """True if the line holding ``addr`` is resident (no LRU update)."""
        line_addr = addr & ~(self.params.line_size - 1)
        set_index = self._index(line_addr)
        return any(line.valid and line.tag == line_addr
                   for line in self._sets[set_index])

    def handle_snoop(self, line_addr: int, invalidate: bool) -> None:
        """Coherence probe from a peer L1 (via the CoherenceDomain).

        Scans the set without touching LRU state or the prefetcher:
        snoops are bus traffic, not demand accesses.  Data movement is
        functional, so a dirty copy is demoted by clearing the dirty bit
        and counting the writeback.
        """
        self.stat_snoops.inc()
        for line in self._sets[self._index(line_addr)]:
            if line.valid and line.tag == line_addr:
                if line.dirty:
                    self.stat_snoop_writebacks.inc()
                    line.dirty = False
                if invalidate:
                    self.stat_snoop_invalidates.inc()
                    line.valid = False
                return

    @property
    def resident_lines(self) -> int:
        return sum(1 for cache_set in self._sets
                   for line in cache_set if line.valid)

    # mode flags used to route writebacks correctly
    _timing_mode = False
    _fast_mode = False

    # ------------------------------------------------------------------
    # atomic protocol
    # ------------------------------------------------------------------
    def recv_atomic(self, pkt: Packet) -> int:
        """Atomic access: returns the full latency in ticks."""
        self._timing_mode = False
        self._fast_mode = False
        self.host_record(self._fn_atomic)
        if pkt.cmd is MemCmd.WRITEBACK:
            return self._atomic_writeback(pkt)
        line_addr = pkt.line_addr(self.params.line_size)
        latency = self.cycles(self.params.tag_latency)
        line = self._lookup(line_addr)
        if line is not None:
            self.stat_hits.inc()
            if pkt.is_write:
                if not line.dirty and self.coherence is not None:
                    self.coherence.snoop_write(self, line_addr)
                line.dirty = True
            if pkt.needs_response:
                pkt.make_response()
            return latency + self.cycles(self.params.data_latency)
        self.stat_misses.inc()
        fill_pkt = Packet(MemCmd.READ_REQ, line_addr, self.params.line_size)
        latency += self.mem_side.send_atomic(fill_pkt)
        self._fill(line_addr)
        self._maybe_prefetch_atomic(line_addr)
        line = self._lookup(line_addr)
        assert line is not None
        if pkt.is_write:
            if not line.dirty and self.coherence is not None:
                self.coherence.snoop_write(self, line_addr)
            line.dirty = True
        if pkt.needs_response:
            pkt.make_response()
        return latency + self.cycles(self.params.response_latency)

    def _atomic_writeback(self, pkt: Packet) -> int:
        line_addr = pkt.line_addr(self.params.line_size)
        line = self._lookup(line_addr)
        if line is not None:
            line.dirty = True
            return self.cycles(self.params.tag_latency)
        # Not resident here: pass down (no allocation on writeback).
        return self.mem_side.send_atomic(pkt)

    # ------------------------------------------------------------------
    # atomic fast path (packet-free)
    # ------------------------------------------------------------------
    def recv_atomic_fast(self, addr: int, size: int, is_write: bool) -> int:
        """Atomic access without a Packet: same latency, stats, LRU
        traffic, and host-trace records as :meth:`recv_atomic` on a
        read/write request — only the Packet allocation is gone."""
        self._timing_mode = False
        self._fast_mode = True
        if self._rec_live:
            self.recorder.record(self._fn_atomic, 0)
        params = self.params
        line_addr = addr & ~(params.line_size - 1)
        latency = self._tag_ticks
        line = self._lookup(line_addr)
        if line is not None:
            self.stat_hits.inc()
            if is_write:
                if not line.dirty and self.coherence is not None:
                    self.coherence.snoop_write(self, line_addr)
                line.dirty = True
            return latency + self._data_ticks
        self.stat_misses.inc()
        latency += self.mem_side.send_atomic_fast(
            line_addr, params.line_size, False)
        self._fill(line_addr)
        self._maybe_prefetch_atomic(line_addr)
        line = self._lookup(line_addr)
        assert line is not None
        if is_write:
            if not line.dirty and self.coherence is not None:
                self.coherence.snoop_write(self, line_addr)
            line.dirty = True
        return latency + self._resp_ticks

    def recv_atomic_wb_fast(self, addr: int, size: int) -> int:
        """Packet-free equivalent of an atomic WRITEBACK request."""
        self._timing_mode = False
        self._fast_mode = True
        if self._rec_live:
            self.recorder.record(self._fn_atomic, 0)
        line_addr = addr & ~(self.params.line_size - 1)
        line = self._lookup(line_addr)
        if line is not None:
            line.dirty = True
            return self._tag_ticks
        # Not resident here: pass down (no allocation on writeback).
        return self.mem_side.send_atomic_wb_fast(addr, size)

    # ------------------------------------------------------------------
    # timing protocol
    # ------------------------------------------------------------------
    def recv_timing_req(self, pkt: Packet) -> bool:
        self._timing_mode = True
        self._fast_mode = False
        self.host_record(self._fn_recv_timing)
        if pkt.cmd is MemCmd.WRITEBACK:
            # Absorb or forward writebacks without a response.
            line_addr = pkt.line_addr(self.params.line_size)
            line = self._lookup(line_addr)
            if line is not None:
                line.dirty = True
            else:
                self.mem_side.send_timing_req(pkt)
            return True
        delay = self.cycles(self.params.tag_latency)
        self.schedule_in(
            CallbackEvent(lambda: self._handle_timing(pkt),
                          name=f"{self.name}.lookup"),
            delay)
        return True

    def _handle_timing(self, pkt: Packet) -> None:
        line_addr = pkt.line_addr(self.params.line_size)
        line = self._lookup(line_addr)
        if line is not None:
            self.stat_hits.inc()
            if pkt.is_write:
                if not line.dirty and self.coherence is not None:
                    self.coherence.snoop_write(self, line_addr)
                line.dirty = True
            if pkt.needs_response:
                pkt.make_response()
                self.schedule_in(
                    CallbackEvent(lambda: self.cpu_side.send_timing_resp(pkt),
                                  name=f"{self.name}.hit_resp"),
                    self.cycles(self.params.data_latency))
            return
        self.stat_misses.inc()
        mshr = self._mshrs.get(line_addr)
        if mshr is not None:
            self.host_record(self._fn_mshr)
            self.stat_mshr_merges.inc()
            mshr.targets.append(pkt)
            return
        mshr = _MSHR(line_addr)
        mshr.targets.append(pkt)
        self._mshrs[line_addr] = mshr
        self.host_record(self._fn_mshr)
        fill_pkt = Packet(MemCmd.READ_REQ, line_addr, self.params.line_size)
        fill_pkt.push_state(self)
        self.mem_side.send_timing_req(fill_pkt)
        self._maybe_prefetch_timing(line_addr)

    def recv_timing_resp(self, pkt: Packet) -> None:
        """Fill returning from the level below."""
        self.host_record(self._fn_resp)
        owner = pkt.pop_state()
        assert owner is self, "response routed to the wrong cache"
        line_addr = pkt.line_addr(self.params.line_size)
        mshr = self._mshrs.pop(line_addr, None)
        self._fill(line_addr,
                   prefetched=bool(mshr is not None and mshr.is_prefetch))
        if mshr is None:
            return
        line = self._lookup(line_addr)
        assert line is not None
        delay = self.cycles(self.params.response_latency)
        for target in mshr.targets:
            if target.is_write:
                if not line.dirty and self.coherence is not None:
                    self.coherence.snoop_write(self, line_addr)
                line.dirty = True
            if target.needs_response:
                target.make_response()
                self.schedule_in(
                    CallbackEvent(self._make_responder(target),
                                  name=f"{self.name}.miss_resp"),
                    delay)

    def _make_responder(self, pkt: Packet):
        return lambda: self.cpu_side.send_timing_resp(pkt)

    def recv_req_retry(self) -> None:  # pragma: no cover - targets never busy
        pass

    # ------------------------------------------------------------------
    # functional protocol
    # ------------------------------------------------------------------
    def recv_functional(self, pkt: Packet) -> None:
        self.mem_side.send_functional(pkt)
