"""Coherent crossbar: routes packets between caches and the level below.

A simplified gem5 ``CoherentXBar``: N CPU-side response ports funnel into
one memory-side request port with a fixed forward/response latency.
Responses are routed back using the packet's sender-state stack.
"""

from __future__ import annotations

from ...events import CallbackEvent, SimObject
from .packet import Packet
from .port import RequestPort, ResponsePort


class _XBarSlavePort(ResponsePort):
    """CPU-side port; delegates protocol callbacks to the crossbar."""

    __slots__ = ("xbar",)

    def __init__(self, name: str, xbar: "CoherentXBar") -> None:
        super().__init__(name, xbar)
        self.xbar = xbar


class CoherentXBar(SimObject):
    """N-to-1 packet router with fixed latency."""

    def __init__(self, name: str, parent, forward_latency: int = 1,
                 response_latency: int = 1, width_bytes: int = 32) -> None:
        super().__init__(name, parent)
        self.forward_latency = forward_latency
        self.response_latency = response_latency
        self.width_bytes = width_bytes
        self.mem_side = RequestPort("mem_side", self)
        self._slave_ports: list[_XBarSlavePort] = []
        self._fn_forward = self.host_fn("CoherentXBar::recvTimingReq")
        self._fn_response = self.host_fn("CoherentXBar::recvTimingResp")

    def reg_stats(self) -> None:
        self.stat_packets = self.stats.scalar(
            "pktCount", "packets routed through this crossbar")
        self.stat_retries = self.stats.scalar(
            "retryCount", "requests initially rejected")

    def new_cpu_side_port(self) -> _XBarSlavePort:
        """Create another CPU-side port (one per upstream cache/CPU)."""
        port = _XBarSlavePort(f"cpu_side[{len(self._slave_ports)}]", self)
        self._slave_ports.append(port)
        return port

    # ------------------------------------------------------------------
    # protocol callbacks (shared by all CPU-side ports)
    # ------------------------------------------------------------------
    def recv_atomic(self, pkt: Packet) -> int:
        self.stat_packets.inc()
        latency = self.cycles(self.forward_latency)
        return latency + self.mem_side.send_atomic(pkt)

    def recv_atomic_fast(self, addr: int, size: int, is_write: bool) -> int:
        """Packet-free atomic routing: same pktCount and latency as
        :meth:`recv_atomic`, no Packet in flight."""
        self.stat_packets.inc()
        return (self.cycles(self.forward_latency)
                + self.mem_side.send_atomic_fast(addr, size, is_write))

    def recv_atomic_wb_fast(self, addr: int, size: int) -> int:
        self.stat_packets.inc()
        return (self.cycles(self.forward_latency)
                + self.mem_side.send_atomic_wb_fast(addr, size))

    def recv_timing_req(self, pkt: Packet) -> bool:
        self.stat_packets.inc()
        self.host_record(self._fn_forward)
        if pkt.needs_response:
            pkt.push_state(self._source_port_for(pkt))
        self.schedule_in(
            CallbackEvent(lambda: self.mem_side.send_timing_req(pkt),
                          name=f"{self.name}.fwd"),
            self.cycles(self.forward_latency))
        return True

    def _source_port_for(self, pkt: Packet) -> _XBarSlavePort:
        # The immediate requester is the peer whose owner last touched the
        # packet; with point-to-point ports we recover it by asking each
        # slave port whether its peer sent this request.  In practice the
        # current sender is recorded by the port layer: the peer of the
        # port that called us.  Since Python port callbacks do not carry
        # the port, we route by the requester object pushed by caches, or
        # fall back to the single-port case.
        if len(self._slave_ports) == 1:
            return self._slave_ports[0]
        # Multi-port: the requester pushed itself (cache) or the CPU did;
        # find the slave port whose peer belongs to that owner.
        requester = pkt._sender_states[-1] if pkt._sender_states else None
        for port in self._slave_ports:
            peer = port.peer
            if peer is not None and peer.owner is requester:
                return port
        raise RuntimeError(
            f"{self.path}: cannot route response for packet {pkt!r}")

    def recv_timing_resp(self, pkt: Packet) -> None:
        self.host_record(self._fn_response)
        source = pkt.pop_state()
        assert isinstance(source, _XBarSlavePort)
        self.schedule_in(
            CallbackEvent(lambda: source.send_timing_resp(pkt),
                          name=f"{self.name}.resp"),
            self.cycles(self.response_latency))

    def recv_req_retry(self) -> None:  # pragma: no cover - targets never busy
        pass

    def recv_functional(self, pkt: Packet) -> None:
        self.mem_side.send_functional(pkt)
