"""Guest physical memory, backed lazily page by page.

Like gem5, the simulator backs simulated DRAM with host memory.  Pages
are allocated on first touch from the host heap (via the execution
recorder), so the *host-visible* data footprint of a simulation grows
with the guest's working set — the property behind the paper's Fig. 9
(gem5's data set fits in the host LLC).
"""

from __future__ import annotations

from typing import Optional

from ...events import SimObject

PAGE_SIZE = 4096
PAGE_SHIFT = 12


class MemoryError_(RuntimeError):
    """Raised on out-of-range guest accesses."""


class PhysicalMemory(SimObject):
    """Byte-addressable guest memory with lazy page allocation."""

    def __init__(self, name: str, parent, size: int) -> None:
        super().__init__(name, parent)
        if size <= 0 or size % PAGE_SIZE:
            raise ValueError(
                f"memory size must be a positive multiple of {PAGE_SIZE}, "
                f"got {size}")
        self.size = size
        self._pages: dict[int, bytearray] = {}
        self._page_host_base: dict[int, int] = {}

    # ------------------------------------------------------------------
    # page management
    # ------------------------------------------------------------------
    def _page(self, addr: int) -> tuple[bytearray, int]:
        if not 0 <= addr < self.size:
            raise MemoryError_(
                f"guest address {addr:#x} outside memory of {self.size:#x}")
        page_num = addr >> PAGE_SHIFT
        page = self._pages.get(page_num)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_num] = page
            self._page_host_base[page_num] = self.host_alloc(
                PAGE_SIZE, f"guestpage:{page_num:#x}")
        return page, addr & (PAGE_SIZE - 1)

    def host_addr(self, addr: int) -> int:
        """Host address backing guest address ``addr`` (allocating the page)."""
        page_num = addr >> PAGE_SHIFT
        base = self._page_host_base.get(page_num)
        if base is None:
            self._page(addr)
            base = self._page_host_base[page_num]
        return base + (addr & (PAGE_SIZE - 1))

    @property
    def pages_touched(self) -> int:
        return len(self._pages)

    @property
    def bytes_touched(self) -> int:
        return len(self._pages) * PAGE_SIZE

    # ------------------------------------------------------------------
    # raw access
    # ------------------------------------------------------------------
    def read(self, addr: int, size: int) -> int:
        """Read ``size`` bytes little-endian; returns an unsigned integer."""
        # Hot path: in-bounds access to an already-touched page.  This is
        # the per-instruction fetch/load route, so it avoids the helper
        # calls; all edge cases fall through to the checked path below.
        if 0 < size and 0 <= addr and addr + size <= self.size:
            page = self._pages.get(addr >> PAGE_SHIFT)
            offset = addr & (PAGE_SIZE - 1)
            if page is not None and offset + size <= PAGE_SIZE:
                return int.from_bytes(page[offset:offset + size], "little")
        self._check_span(addr, size)
        page, offset = self._page(addr)
        if offset + size <= PAGE_SIZE:
            return int.from_bytes(page[offset:offset + size], "little")
        return int.from_bytes(self._read_span(addr, size), "little")

    def write(self, addr: int, size: int, value: int) -> None:
        """Write the low ``size`` bytes of ``value`` little-endian."""
        if 0 < size and 0 <= addr and addr + size <= self.size:
            page = self._pages.get(addr >> PAGE_SHIFT)
            offset = addr & (PAGE_SIZE - 1)
            if page is not None and offset + size <= PAGE_SIZE:
                page[offset:offset + size] = \
                    (value & ((1 << (size * 8)) - 1)).to_bytes(size, "little")
                return
        self._check_span(addr, size)
        raw = (value & ((1 << (size * 8)) - 1)).to_bytes(size, "little")
        page, offset = self._page(addr)
        if offset + size <= PAGE_SIZE:
            page[offset:offset + size] = raw
        else:
            for index, byte in enumerate(raw):
                byte_page, byte_off = self._page(addr + index)
                byte_page[byte_off] = byte

    def read_block(self, addr: int, size: int) -> bytes:
        """Read an arbitrary byte span (used for program load checks)."""
        self._check_span(addr, size)
        return self._read_span(addr, size)

    def write_block(self, addr: int, data: bytes) -> None:
        """Write an arbitrary byte span (used by the loader)."""
        self._check_span(addr, len(data))
        for index, byte in enumerate(data):
            page, offset = self._page(addr + index)
            page[offset] = byte

    def _read_span(self, addr: int, size: int) -> bytes:
        out = bytearray(size)
        for index in range(size):
            page, offset = self._page(addr + index)
            out[index] = page[offset]
        return bytes(out)

    def _check_span(self, addr: int, size: int) -> None:
        if size <= 0:
            raise MemoryError_(f"access size must be positive, got {size}")
        if addr < 0 or addr + size > self.size:
            raise MemoryError_(
                f"access [{addr:#x}, {addr + size:#x}) outside memory "
                f"of {self.size:#x}")
