"""g5 memory system: packets, ports, caches, crossbars, memory controller."""

from .cache import Cache, CacheParams
from .dram import MemCtrl
from .packet import MemCmd, Packet, ifetch_req, read_req, write_req, writeback
from .physmem import PAGE_SIZE, PhysicalMemory
from .port import Port, PortError, RequestPort, ResponsePort
from .xbar import CoherentXBar

__all__ = [
    "Cache",
    "CacheParams",
    "CoherentXBar",
    "MemCmd",
    "MemCtrl",
    "PAGE_SIZE",
    "Packet",
    "PhysicalMemory",
    "Port",
    "PortError",
    "RequestPort",
    "ResponsePort",
    "ifetch_req",
    "read_req",
    "write_req",
    "writeback",
]
