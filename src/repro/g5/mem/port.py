"""Ports: the point-to-point connection fabric between memory objects.

Mirrors gem5's master/slave (request/response) port pairs with the three
access protocols:

- **atomic** — caller blocks, callee returns total latency in ticks;
- **timing** — requests and responses are separate events; and
- **functional** — debug access with no timing side effects.
"""

from __future__ import annotations

from typing import Optional, Protocol

from .packet import Packet


class PortError(RuntimeError):
    """Raised on unbound ports or protocol misuse."""


class TimingTarget(Protocol):
    """What a ResponsePort owner must implement.

    Since the fast-path kernel, the atomic protocol is dual-path: the
    packet form (``recv_atomic``) is the reference, and the packet-free
    form (``recv_atomic_fast``/``recv_atomic_wb_fast``) must produce
    identical latency and stats (enforced by the ``fast-slow-parity``
    lint pass and the differential test suite).
    """

    def recv_atomic(self, pkt: Packet) -> int: ...
    def recv_atomic_fast(self, addr: int, size: int,
                         is_write: bool) -> int: ...
    def recv_atomic_wb_fast(self, addr: int, size: int) -> int: ...
    def recv_timing_req(self, pkt: Packet) -> bool: ...
    def recv_functional(self, pkt: Packet) -> None: ...


class TimingSource(Protocol):
    """What a RequestPort owner must implement."""

    def recv_timing_resp(self, pkt: Packet) -> None: ...
    def recv_req_retry(self) -> None: ...


class Port:
    """Common port plumbing: naming and peer binding.

    ``link`` is normally ``None`` (peer calls are direct).  Sharded
    simulation installs a :class:`~repro.g5.sharded.BoundaryLink` on
    both ports of a pair whose owners live on different event queues;
    the timing protocol then routes through the link's boundary buffer
    instead of calling the peer synchronously (atomic and functional
    accesses stay direct — they carry no event-queue state).
    """

    __slots__ = ("name", "owner", "peer", "link")

    def __init__(self, name: str, owner) -> None:
        self.name = name
        self.owner = owner
        self.peer: Optional[Port] = None
        self.link = None

    @property
    def connected(self) -> bool:
        return self.peer is not None

    def bind(self, peer: "Port") -> None:
        if self.peer is not None or peer.peer is not None:
            raise PortError(
                f"port {self.full_name} or {peer.full_name} already bound")
        self.peer = peer
        peer.peer = self

    @property
    def full_name(self) -> str:
        owner_path = getattr(self.owner, "path", repr(self.owner))
        return f"{owner_path}.{self.name}"

    def _require_peer(self) -> "Port":
        if self.peer is None:
            raise PortError(f"port {self.full_name} is not connected")
        return self.peer

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        peer = self.peer.full_name if self.peer else "<unbound>"
        return f"<{type(self).__name__} {self.full_name} -> {peer}>"


class RequestPort(Port):
    """Initiates transactions (CPU side of a cache, cache's memory side)."""

    __slots__ = ()

    def send_atomic(self, pkt: Packet) -> int:
        """Perform an atomic access; returns latency in ticks."""
        peer = self._require_peer()
        assert isinstance(peer, ResponsePort)
        return peer.owner.recv_atomic(pkt)

    def send_atomic_fast(self, addr: int, size: int, is_write: bool) -> int:
        """Packet-free atomic access (fast path); latency in ticks."""
        return self._require_peer().owner.recv_atomic_fast(
            addr, size, is_write)

    def atomic_fast_fn(self):
        """Bound packet-free atomic entry point of the connected peer.

        The port is the mediation point for every cross-object access:
        model code that wants to cache the peer's fast atomic callable
        must obtain it here rather than reaching through
        ``.peer.owner`` itself, so instrumentation layers (the ownership
        sanitizer, future boundary interposition) can wrap the crossing.
        """
        return self._require_peer().owner.recv_atomic_fast

    def send_atomic_wb_fast(self, addr: int, size: int) -> int:
        """Packet-free atomic writeback (fast path); latency in ticks."""
        return self._require_peer().owner.recv_atomic_wb_fast(addr, size)

    def send_timing_req(self, pkt: Packet) -> bool:
        """Send a timing request; False means the target is busy (retry)."""
        peer = self._require_peer()
        assert isinstance(peer, ResponsePort)
        if self.link is not None:
            return self.link.send_req(peer, pkt)
        return peer.owner.recv_timing_req(pkt)

    def send_functional(self, pkt: Packet) -> None:
        peer = self._require_peer()
        assert isinstance(peer, ResponsePort)
        peer.owner.recv_functional(pkt)

    # Called by the peer ResponsePort:
    def recv_timing_resp(self, pkt: Packet) -> None:
        self.owner.recv_timing_resp(pkt)

    def recv_req_retry(self) -> None:
        self.owner.recv_req_retry()


class ResponsePort(Port):
    """Receives transactions (memory side of a CPU, CPU side of a cache)."""

    __slots__ = ()

    def send_timing_resp(self, pkt: Packet) -> None:
        """Deliver a response back to the requesting port."""
        peer = self._require_peer()
        assert isinstance(peer, RequestPort)
        if self.link is not None:
            self.link.send_resp(peer, pkt)
            return
        peer.recv_timing_resp(pkt)

    def send_retry(self) -> None:
        """Tell the requester a previously-rejected request may retry."""
        peer = self._require_peer()
        assert isinstance(peer, RequestPort)
        if self.link is not None:
            self.link.send_retry(peer)
            return
        peer.recv_req_retry()
