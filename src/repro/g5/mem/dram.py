"""Memory controller + DRAM timing model.

Owns the guest :class:`~repro.g5.mem.physmem.PhysicalMemory` backing
store (data correctness lives here) and models access timing as a fixed
device latency plus a bandwidth constraint: bursts are serialised at
``line_size / bandwidth`` intervals, so a flood of misses queues up.
"""

from __future__ import annotations

from ...events import CallbackEvent, SimObject, TICKS_PER_SECOND
from .packet import Packet
from .physmem import PhysicalMemory
from .port import ResponsePort


class MemCtrl(SimObject):
    """Single-channel memory controller."""

    def __init__(self, name: str, parent, size: int,
                 latency_ns: float = 60.0,
                 bandwidth_gbps: float = 12.8) -> None:
        super().__init__(name, parent)
        if latency_ns <= 0 or bandwidth_gbps <= 0:
            raise ValueError("latency and bandwidth must be positive")
        self.port = ResponsePort("port", self)
        self.memory = PhysicalMemory("memory", self, size)
        self.access_latency = int(latency_ns * TICKS_PER_SECOND / 1e9)
        self._ticks_per_byte = TICKS_PER_SECOND / (bandwidth_gbps * 1e9)
        self._next_free_tick = 0
        self._fn_access = self.host_fn("MemCtrl::recvTimingReq")
        self._fn_respond = self.host_fn("MemCtrl::processRespondEvent")

    def reg_stats(self) -> None:
        stats = self.stats
        self.stat_reads = stats.scalar("numReads", "read bursts serviced")
        self.stat_writes = stats.scalar("numWrites", "write bursts serviced")
        self.stat_bytes = stats.scalar("bytesAccessed", "total bytes moved")
        self.stat_queue_delay = stats.scalar(
            "totQueueDelay", "total ticks requests waited for bandwidth")

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    def recv_atomic(self, pkt: Packet) -> int:
        self._account(pkt)
        if pkt.needs_response:
            pkt.make_response()
        return self.access_latency

    def recv_atomic_fast(self, addr: int, size: int, is_write: bool) -> int:
        """Packet-free atomic access: accounting identical to
        :meth:`recv_atomic` (reads/writes/bytes), same fixed latency."""
        if is_write:
            self.stat_writes.inc()
        else:
            self.stat_reads.inc()
        self.stat_bytes.inc(size)
        return self.access_latency

    def recv_atomic_wb_fast(self, addr: int, size: int) -> int:
        # A writeback is a write burst with no response.
        self.stat_writes.inc()
        self.stat_bytes.inc(size)
        return self.access_latency

    def recv_timing_req(self, pkt: Packet) -> bool:
        self.host_record(self._fn_access)
        self._account(pkt)
        burst_ticks = int(pkt.size * self._ticks_per_byte)
        start = max(self.now, self._next_free_tick)
        self.stat_queue_delay.inc(start - self.now)
        self._next_free_tick = start + burst_ticks
        if pkt.needs_response:
            pkt.make_response()
            respond_at = start + self.access_latency + burst_ticks
            self.schedule(
                CallbackEvent(self._make_responder(pkt),
                              name=f"{self.name}.resp"),
                respond_at)
        return True

    def _make_responder(self, pkt: Packet):
        def respond() -> None:
            self.host_record(self._fn_respond)
            self.port.send_timing_resp(pkt)
        return respond

    def recv_functional(self, pkt: Packet) -> None:
        # Functional accesses move data; timing accesses above do not.
        if pkt.is_write and pkt.data is not None:
            self.memory.write(pkt.addr, pkt.size, pkt.data)
        elif pkt.is_read:
            pkt.data = self.memory.read(pkt.addr, pkt.size)

    def _account(self, pkt: Packet) -> None:
        if pkt.is_write:
            self.stat_writes.inc()
        else:
            self.stat_reads.inc()
        self.stat_bytes.inc(pkt.size)
