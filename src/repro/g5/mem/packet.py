"""Memory-system packets, mirroring gem5's ``Packet``.

A packet carries one memory transaction between ports.  Requests become
responses in place (``make_response``), and components stack *sender
state* on the packet to route responses back, exactly like gem5's
``Packet::pushSenderState``.
"""

from __future__ import annotations

import itertools
from enum import Enum, auto
from typing import Any, Optional


class MemCmd(Enum):
    """Transaction commands (subset of gem5's MemCmd)."""

    READ_REQ = auto()
    READ_RESP = auto()
    WRITE_REQ = auto()
    WRITE_RESP = auto()
    WRITEBACK = auto()          # dirty line eviction, no response
    IFETCH_REQ = auto()
    IFETCH_RESP = auto()

    @property
    def is_read(self) -> bool:
        return self in (MemCmd.READ_REQ, MemCmd.READ_RESP,
                        MemCmd.IFETCH_REQ, MemCmd.IFETCH_RESP)

    @property
    def is_write(self) -> bool:
        return self in (MemCmd.WRITE_REQ, MemCmd.WRITE_RESP, MemCmd.WRITEBACK)

    @property
    def is_request(self) -> bool:
        return self in (MemCmd.READ_REQ, MemCmd.WRITE_REQ,
                        MemCmd.IFETCH_REQ, MemCmd.WRITEBACK)

    @property
    def is_response(self) -> bool:
        return self in (MemCmd.READ_RESP, MemCmd.WRITE_RESP,
                        MemCmd.IFETCH_RESP)

    @property
    def needs_response(self) -> bool:
        return self in (MemCmd.READ_REQ, MemCmd.WRITE_REQ, MemCmd.IFETCH_REQ)

    def response(self) -> "MemCmd":
        table = {
            MemCmd.READ_REQ: MemCmd.READ_RESP,
            MemCmd.WRITE_REQ: MemCmd.WRITE_RESP,
            MemCmd.IFETCH_REQ: MemCmd.IFETCH_RESP,
        }
        try:
            return table[self]
        except KeyError:
            raise ValueError(f"{self} has no response command") from None


_packet_ids = itertools.count(1)


class Packet:
    """One memory transaction."""

    __slots__ = ("packet_id", "cmd", "addr", "size", "data",
                 "_sender_states", "req_tick", "is_instruction")

    def __init__(self, cmd: MemCmd, addr: int, size: int,
                 data: Optional[int] = None, req_tick: int = 0) -> None:
        if size <= 0:
            raise ValueError(f"packet size must be positive, got {size}")
        if addr < 0:
            raise ValueError(f"packet address cannot be negative: {addr}")
        self.packet_id = next(_packet_ids)
        self.cmd = cmd
        self.addr = addr
        self.size = size
        self.data = data
        self.req_tick = req_tick
        self.is_instruction = cmd in (MemCmd.IFETCH_REQ, MemCmd.IFETCH_RESP)
        self._sender_states: list[Any] = []

    # -- classification ----------------------------------------------------
    @property
    def is_read(self) -> bool:
        return self.cmd.is_read

    @property
    def is_write(self) -> bool:
        return self.cmd.is_write

    @property
    def is_request(self) -> bool:
        return self.cmd.is_request

    @property
    def is_response(self) -> bool:
        return self.cmd.is_response

    @property
    def needs_response(self) -> bool:
        return self.cmd.needs_response

    def line_addr(self, line_size: int) -> int:
        """Address of the cache line containing this access."""
        return self.addr & ~(line_size - 1)

    # -- state transitions ---------------------------------------------------
    def make_response(self) -> None:
        """Turn this request into its response, in place."""
        self.cmd = self.cmd.response()

    # -- sender-state stack ----------------------------------------------------
    def push_state(self, state: Any) -> None:
        self._sender_states.append(state)

    def pop_state(self) -> Any:
        if not self._sender_states:
            raise RuntimeError(
                f"packet {self.packet_id} has no sender state to pop")
        return self._sender_states.pop()

    @property
    def has_state(self) -> bool:
        return bool(self._sender_states)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Packet #{self.packet_id} {self.cmd.name} "
                f"addr={self.addr:#x} size={self.size}>")


def read_req(addr: int, size: int, req_tick: int = 0) -> Packet:
    return Packet(MemCmd.READ_REQ, addr, size, req_tick=req_tick)


def write_req(addr: int, size: int, data: int, req_tick: int = 0) -> Packet:
    return Packet(MemCmd.WRITE_REQ, addr, size, data, req_tick=req_tick)


def ifetch_req(addr: int, size: int, req_tick: int = 0) -> Packet:
    return Packet(MemCmd.IFETCH_REQ, addr, size, req_tick=req_tick)


def writeback(addr: int, size: int, data: Optional[int] = None) -> Packet:
    return Packet(MemCmd.WRITEBACK, addr, size, data)
