"""Sharded simulation: domain-partitioned event queues with exact merge.

The paper attributes most of gem5's host time to the single global event
loop; parti-gem5 (PAPERS.md) breaks that bottleneck by partitioning the
SimObject graph into *domains* — one per CPU plus one memory domain
holding the crossbar, caches, and DRAM — each with its own event queue,
synchronized conservatively at domain boundaries.  This module is that
architecture for the repro simulator, wired so sharded runs stay
**bit-identical** to single-queue runs.

Design
------
- Every :class:`~repro.events.queue.EventQueue` draws event sequence
  numbers from one global counter, so head keys ``(tick, priority,
  seq)`` from different queues are directly comparable and never tie.
- The engine repeatedly picks the queue holding the globally-smallest
  head key and runs it as a *window* bounded (exclusively) by the
  smallest head key of any other queue — only events a single merged
  queue would fire next ever execute, so the total event order is
  exactly the single-queue order.
- Cross-domain timing traffic goes through a :class:`BoundaryLink`
  installed on the port pair.  Zero-latency links run the receiver
  *synchronously* at the sender's position in the merged order (the
  single-queue call graph, reproduced exactly), then clamp the
  sender's window to the receiver's new head so no later local event
  can overtake the packet's consequences.  Links with real latency
  buffer the packet as a delivery event (reserved ``LINK_PRI``) in the
  receiver's queue instead; pending deliveries drain when the
  receiving domain's window opens — the boundary-buffer flush.
- The synchronization quantum is the minimum cross-domain link latency.
  At the default (zero-latency links) the quantum degenerates to exact
  per-event synchronization and guest timing is untouched; a positive
  ``SimConfig.link_latency_cycles`` buys real lookahead (bigger windows,
  fewer flushes) at the cost of added guest-visible latency — see
  EXPERIMENTS.md for the sensitivity study.

Intra-domain scheduling is completely untouched: each domain queue keeps
the zero-heap fast-path tick loop, and the atomic protocol bypasses the
links entirely (it carries no event-queue state), so Atomic-mode runs
shard with no boundary traffic at all.

Host-time instrumentation (per-domain busy seconds, synchronization
overhead) only activates when a timer callable is injected by benchmark
code; the simulation core itself never reads the wall clock.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..events import EventQueue, ExitEvent, LINK_PRI
from ..events.event import Event
from ..events.queue import EventQueueError
from .mem.port import Port, RequestPort

#: Window bound meaning "unbounded": sorts after every real event key.
_NO_BOUND = (2 ** 63, 2 ** 31, 0)

#: Sorts before any real priority at a given tick (gem5's span is small).
_MIN_PRI = -(2 ** 31)


class DeliveryEvent(Event):
    """One buffered cross-domain packet (or retry) delivery.

    A dedicated slotted event instead of ``CallbackEvent`` + lambda:
    links fire one of these per boundary crossing, so construction cost
    is on the sharded hot path the benchmark gate measures.  ``target``
    is the receiver-side bound method; ``pkt`` is ``None`` for retries.
    """

    __slots__ = ("target", "pkt")

    def __init__(self, name: str, target, pkt) -> None:
        super().__init__(name=name, priority=LINK_PRI)
        self.target = target
        self.pkt = pkt

    def process(self) -> None:
        pkt = self.pkt
        if pkt is None:
            self.target()
        else:
            self.target(pkt)


class BoundaryLink:
    """Cross-domain connection between a request/response port pair.

    A zero-latency link (the default) runs the receiver's protocol
    callback *synchronously*, inside the sender's window, exactly where
    a single merged queue would run it — so every schedule the receiver
    performs draws the same global sequence number it would on a single
    queue.  That is what keeps same-``(tick, priority)`` ties anywhere
    downstream resolving identically, and therefore registers, memory,
    stats, and traces bit-identical.  (A deferred delivery event cannot
    guarantee this: it would execute after every same-tick lower-``
    LINK_PRI`` event, so the receiver's schedules — and hence later tie
    breaks — could reorder against the sender's.  Harmless with one CPU
    in flight; observable the moment two cores race a spinlock.)

    A link with real latency buffers the packet as a delivery event
    scheduled into the receiving domain's queue at ``sender.now +
    latency_ticks`` with the reserved ``LINK_PRI`` — added guest-visible
    latency is the modeled behavior there, and the reference path
    emulates the same event shape on a single queue.
    """

    __slots__ = ("name", "req_queue", "resp_queue", "latency_ticks",
                 "deliveries", "sanitizer", "_req_name", "_resp_name",
                 "_retry_name")

    def __init__(self, name: str, req_queue: EventQueue,
                 resp_queue: EventQueue, latency_ticks: int = 0) -> None:
        self.name = name
        self.req_queue = req_queue      # queue of the request-port owner
        self.resp_queue = resp_queue    # queue of the response-port owner
        self.latency_ticks = latency_ticks
        self.deliveries = 0
        #: Ownership sanitizer (:mod:`repro.g5.sanitize`); when armed,
        #: synchronous crossings are published as mediated accesses.
        self.sanitizer = None
        self._req_name = f"{name}.req"
        self._resp_name = f"{name}.resp"
        self._retry_name = f"{name}.retry"

    def install(self, req_port: Port, resp_port: Port) -> None:
        req_port.link = self
        resp_port.link = self

    # -- timing protocol (called from repro.g5.mem.port) ----------------
    def send_req(self, resp_port: Port, pkt) -> bool:
        owner = resp_port.owner
        self._deliver(self.req_queue, self.resp_queue,
                      owner.recv_timing_req, pkt, self._req_name,
                      owner=owner)
        # Boundary targets are never busy: the receiver accepts at
        # delivery time (no model in this tree rejects requests).
        return True

    def send_resp(self, req_port: Port, pkt) -> None:
        self._deliver(self.resp_queue, self.req_queue,
                      req_port.recv_timing_resp, pkt, self._resp_name,
                      owner=req_port.owner)

    def send_retry(self, req_port: Port) -> None:
        self._deliver(self.resp_queue, self.req_queue,
                      req_port.recv_req_retry, None, self._retry_name,
                      owner=req_port.owner)

    # -- internals ------------------------------------------------------
    def _deliver(self, sender: EventQueue, receiver: EventQueue,
                 target: Callable, pkt, name: str, owner=None) -> None:
        self.deliveries += 1
        when = sender.now + self.latency_ticks
        if self.latency_ticks == 0:
            # Synchronous crossing at the sender's merged-order position
            # (see the class docstring).  The receiver's clock may lag —
            # pull it up so the callback's relative schedules land at
            # the global tick, exactly as they would after a delivery
            # event had set ``receiver.now``.
            if receiver.now < when:
                receiver.now = when
            sanitizer = self.sanitizer
            if sanitizer is not None and owner is not None:
                sanitizer.enter(owner)
                try:
                    target(pkt) if pkt is not None else target()
                finally:
                    sanitizer.leave()
            elif pkt is not None:
                target(pkt)
            else:
                target()
            # The callback may have scheduled receiver-side events below
            # the sender's window bound; stop the sender there so the
            # merged order stays exact.  No-op outside a window.
            head = receiver._peek_live()
            if head is not None:
                sender.clamp_window(head[0])
            return
        event = DeliveryEvent(name, target, pkt)
        receiver.schedule_fresh(event, when)
        # The delivery may sort before the sender's own remaining events
        # (e.g. a same-tick stat dump); stop the sender's window there so
        # the merged order stays exact.  No-op on a shared single queue.
        sender.clamp_window((when, LINK_PRI, event._seq))


class ShardedEngine:
    """Merged run loop over per-domain event queues.

    Drop-in for the slice of the :class:`~repro.events.queue.EventQueue`
    interface the simulation drivers use (``run``, ``now``,
    ``events_processed``, ``next_tick``, ``empty``), so ``System.eventq``
    can point at the engine once the graph is partitioned.
    """

    def __init__(self, domains: List[EventQueue],
                 links: List[BoundaryLink],
                 quantum_ticks: int = 0) -> None:
        if len(domains) < 2:
            raise ValueError("a sharded engine needs at least two domains")
        self.domains = list(domains)
        self.links = list(links)
        self.quantum_ticks = quantum_ticks
        self.windows = 0                 # domain windows executed
        #: Host-time instrumentation: injected by benchmark code (the
        #: simulation core never reads the wall clock itself).
        self.timer: Optional[Callable[[], float]] = None
        self.busy_seconds = [0.0] * len(self.domains)
        self.sync_seconds = 0.0
        #: Ownership sanitizer (:mod:`repro.g5.sanitize`), installed by
        #: ``SimConfig(sanitize=True)``; the run loop publishes the
        #: executing domain's index on it before every window.
        self.sanitizer = None

    # -- EventQueue-facade inspection -----------------------------------
    @property
    def now(self) -> int:
        return max(queue.now for queue in self.domains)

    @property
    def events_processed(self) -> int:
        return sum(queue.events_processed for queue in self.domains)

    def __len__(self) -> int:
        return sum(len(queue) for queue in self.domains)

    def empty(self) -> bool:
        return len(self) == 0

    def next_tick(self) -> Optional[int]:
        ticks = [queue.next_tick() for queue in self.domains]
        live = [tick for tick in ticks if tick is not None]
        return min(live) if live else None

    @property
    def deliveries(self) -> int:
        return sum(link.deliveries for link in self.links)

    def describe(self) -> dict:
        """JSON-safe sharding counters (carried on ``SimResult``)."""
        return {
            "domains": len(self.domains),
            "domain_names": [queue.name for queue in self.domains],
            "events_per_domain": [queue.events_processed
                                  for queue in self.domains],
            "windows": self.windows,
            "deliveries": self.deliveries,
            "quantum_ticks": self.quantum_ticks,
        }

    # -- execution ------------------------------------------------------
    def run(self, max_tick: Optional[int] = None,
            max_events: Optional[int] = None) -> ExitEvent:
        """Run the merged loop until exit, drain, or the tick limit.

        Mirrors :meth:`EventQueue.run` semantics: events at exactly
        ``max_tick`` still fire, and pausing leaves every domain at
        ``max_tick`` so a resumed run continues seamlessly.
        """
        if max_events is not None:
            raise EventQueueError(
                "sharded simulation does not support max_events; "
                "use max_tick or run unsharded")
        limit_key = (None if max_tick is None
                     else (max_tick + 1, _MIN_PRI, 0))
        if len(self.domains) == 2 and self.timer is None \
                and self.sanitizer is None:
            return self._run_pair(max_tick, limit_key)
        return self._run_many(max_tick, limit_key)

    def _run_pair(self, max_tick, limit_key) -> ExitEvent:
        """Two-domain loop with the selection inlined (the common case).

        One CPU plus one memory domain is what ``SimConfig(domains=2)``
        builds, and selection runs once per window, so the generic
        best/bound scan is worth specialising away.
        """
        qa, qb = self.domains
        windows = 0
        try:
            while True:
                ea = qa._peek_live()
                eb = qb._peek_live()
                if ea is None:
                    if eb is None:
                        return ExitEvent("event queue empty", code=0)
                    queue, best_key, bound = qb, eb[0], _NO_BOUND
                elif eb is None or ea[0] < eb[0]:
                    queue, best_key = qa, ea[0]
                    bound = _NO_BOUND if eb is None else eb[0]
                else:
                    queue, best_key, bound = qb, eb[0], ea[0]
                if limit_key is not None:
                    if best_key >= limit_key:
                        qa.now = qb.now = max_tick
                        return ExitEvent("simulate() limit reached",
                                         code=0)
                    if limit_key < bound:
                        bound = limit_key
                exit_event = queue.run_window(bound)
                windows += 1
                if exit_event is not None:
                    when = exit_event.when
                    if qa.now < when:
                        qa.now = when
                    if qb.now < when:
                        qb.now = when
                    return exit_event
        finally:
            self.windows += windows

    def _run_many(self, max_tick, limit_key) -> ExitEvent:
        """Generic N-domain loop, with per-domain host-time attribution.

        Also the instrumented path: when a ``timer`` is injected the
        selection is charged to ``sync_seconds`` and each window to its
        domain's ``busy_seconds``.
        """
        domains = self.domains
        timer = self.timer
        sanitizer = self.sanitizer
        t_mark = timer() if timer is not None else 0.0
        try:
            while True:
                best = -1
                best_key = None
                bound = None    # smallest head key of any *other* domain
                for index, queue in enumerate(domains):
                    entry = queue._peek_live()
                    if entry is None:
                        continue
                    key = entry[0]
                    if best_key is None or key < best_key:
                        bound = best_key
                        best_key = key
                        best = index
                    elif bound is None or key < bound:
                        bound = key
                if best_key is None:
                    return ExitEvent("event queue empty", code=0)
                if limit_key is not None and best_key >= limit_key:
                    for queue in domains:
                        queue.now = max_tick
                    return ExitEvent("simulate() limit reached", code=0)
                if bound is None:
                    bound = _NO_BOUND
                if limit_key is not None and limit_key < bound:
                    bound = limit_key
                if sanitizer is not None:
                    sanitizer.current_domain = best
                if timer is not None:
                    # Everything since the last window ended (selection,
                    # bound arithmetic) is synchronization overhead; the
                    # window itself is the chosen domain's busy time.
                    t_run = timer()
                    self.sync_seconds += t_run - t_mark
                    exit_event = domains[best].run_window(bound)
                    t_mark = timer()
                    self.busy_seconds[best] += t_mark - t_run
                else:
                    exit_event = domains[best].run_window(bound)
                self.windows += 1
                if exit_event is not None:
                    # Bring lagging domains up to the exit tick; no live
                    # event below it can exist (the exit was globally
                    # next).
                    for queue in domains:
                        if queue.now < exit_event.when:
                            queue.now = exit_event.when
                    return exit_event
        finally:
            if sanitizer is not None:
                sanitizer.current_domain = None


# ----------------------------------------------------------------------
# partitioning a built System
# ----------------------------------------------------------------------
def memory_domain_objects(system) -> list:
    """The SimObjects of the memory domain (hierarchy roots + subtrees).

    Single-core systems keep the legacy partition (both L1s live with
    the rest of the hierarchy); on a multi-core system each L1 pair is
    private to its core's domain, so only the shared levels — crossbar,
    L2, memory controller — belong to the memory domain.
    """
    if len(system.cpus) > 1:
        roots = [system.l2bus, system.l2cache, system.memctrl]
    else:
        roots = [system.icache, system.dcache, system.l2bus,
                 system.l2cache, system.memctrl]
    members = []
    for root in roots:
        members.append(root)
        members.extend(root.descendants())
    return members


def core_domain_objects(system, index: int) -> list:
    """The SimObjects of core ``index``'s domain (CPU plus private L1s).

    Only meaningful on multi-core systems; a single-core system has its
    L1s on the memory domain (see :func:`memory_domain_objects`).
    """
    roots = [system.cpus[index], system.icaches[index],
             system.dcaches[index]]
    members = []
    for root in roots:
        members.append(root)
        members.extend(root.descendants())
    return members


def domain_groups(system) -> dict:
    """Map ``id(obj)`` to its domain-group name.

    ``"cpu"``/``"mem"`` for single-core systems (the legacy two-way
    partition), ``"cpu<i>"``/``"mem"`` per core otherwise.  Objects not
    mapped (the system root, control plane) default to the boot core's
    group.
    """
    groups: dict = {}
    for obj in memory_domain_objects(system):
        groups[id(obj)] = "mem"
    if len(system.cpus) > 1:
        for index in range(len(system.cpus)):
            for obj in core_domain_objects(system, index):
                groups[id(obj)] = f"cpu{index}"
    return groups


def object_ports(obj) -> list:
    """Every Port reachable from ``obj``'s attributes (lists included)."""
    ports = []
    attrs = vars(obj)
    for name in sorted(attrs):
        value = attrs[name]
        if isinstance(value, Port):
            ports.append(value)
        elif isinstance(value, list):
            ports.extend(item for item in value if isinstance(item, Port))
    return ports


def boundary_pairs(system) -> list:
    """Bound ``(request, response)`` port pairs that span the boundary."""
    member_ids = {id(obj) for obj in memory_domain_objects(system)}
    pairs = []
    for obj in [system] + list(system.descendants()):
        for port in object_ports(obj):
            if not isinstance(port, RequestPort) or port.peer is None:
                continue
            if (id(port.owner) in member_ids) != \
                    (id(port.peer.owner) in member_ids):
                pairs.append((port, port.peer))
    return pairs


def shard_system(system) -> Optional[ShardedEngine]:
    """Partition a built ``System`` according to its ``SimConfig``.

    With ``domains > 1`` the memory hierarchy moves onto its own event
    queue, boundary links bridge the CPU<->L1 port pairs, and the
    returned engine replaces ``system.eventq``.  With
    ``boundary_reference=True`` the same links are installed but every
    object stays on the single construction queue — the "single-queue
    path" the differential suite compares sharded runs against, with
    identical link semantics and one event queue.
    """
    config = system.config
    latency_ticks = (system.clock.cycles_to_ticks(config.link_latency_cycles)
                     if config.link_latency_cycles else 0)
    engine: Optional[ShardedEngine] = None
    if config.domains > 1:
        cpu_queue = system.eventq
        cpu_queue.name = "cpu0"
        mem_queue = EventQueue(name="mem", fast_path=config.fast_path)
        for obj in memory_domain_objects(system):
            obj.eventq = mem_queue
        core_queues = [cpu_queue]
        cores = len(system.cpus)
        if cores > 1:
            # One queue per core up to the requested domain count (the
            # memory domain takes the last slot); surplus cores share
            # queues round-robin.
            n_core_queues = min(config.domains - 1, cores)
            core_queues += [
                EventQueue(name=f"cpu{index}", fast_path=config.fast_path)
                for index in range(1, n_core_queues)]
            for index in range(cores):
                queue = core_queues[index % n_core_queues]
                for obj in core_domain_objects(system, index):
                    obj.eventq = queue
    links = []
    for req_port, resp_port in boundary_pairs(system):
        link = BoundaryLink(
            name=f"link:{req_port.full_name}",
            req_queue=req_port.owner.eventq,
            resp_queue=resp_port.owner.eventq,
            latency_ticks=latency_ticks,
        )
        link.install(req_port, resp_port)
        links.append(link)
    system.boundary_links = links
    if config.domains > 1:
        engine = ShardedEngine(core_queues + [mem_queue], links,
                               quantum_ticks=latency_ticks)
        system.eventq = engine
    return engine
