"""m5-style pseudo-ops: guest hooks into the simulator.

gem5 guests use "m5 ops" (magic instructions) to talk to the simulator:
reset the statistics at the region of interest, dump them, mark work
boundaries, or exit.  SimRISC reserves the ``m5op`` opcode for the same
purpose; its 16-bit immediate selects the operation.

ROI (region-of-interest) markers also annotate the host-level execution
trace, so host profiling can be restricted to the measured region —
the methodology the paper's per-workload numbers rely on (counters are
read around the simulation loop, not around process startup).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .stats import dump_stats

if TYPE_CHECKING:  # pragma: no cover
    from .system import System

from .isa.pseudo_numbers import (  # noqa: F401  (re-exported)
    M5_DUMP_STATS,
    M5_EXIT,
    M5_RESET_STATS,
    M5_WORK_BEGIN,
    M5_WORK_END,
)


class PseudoOpError(RuntimeError):
    """Raised on an unknown pseudo-op number."""


class PseudoOpHandler:
    """Services m5 ops for one system."""

    def __init__(self, system: "System") -> None:
        self.system = system
        self.stat_dumps: list[dict[str, float]] = []
        self.work_begin_count = 0
        self.work_end_count = 0
        #: Times the guest zeroed the statistics (M5_RESET_STATS or
        #: M5_WORK_BEGIN).  The sampling profiler anchors its interval
        #: accounting to the *last* reset so reconstructed stats share
        #: the ROI-relative semantics of an uninterrupted run.
        self.reset_count = 0

    def handle(self, op: int) -> None:
        """Dispatch one m5 pseudo-op by its immediate number."""
        system = self.system
        if op == M5_EXIT:
            system.cpu.halt("m5_exit instruction encountered")
        elif op == M5_RESET_STATS:
            self._reset_stats()
        elif op == M5_DUMP_STATS:
            self.stat_dumps.append(dump_stats(system))
        elif op == M5_WORK_BEGIN:
            self.work_begin_count += 1
            self._reset_stats()
            system.recorder.mark_roi_begin()
        elif op == M5_WORK_END:
            self.work_end_count += 1
            self.stat_dumps.append(dump_stats(system))
            system.recorder.mark_roi_end()
        else:
            raise PseudoOpError(f"unknown m5 pseudo-op {op:#x}")

    def _reset_stats(self) -> None:
        self.reset_count += 1
        for obj in [self.system, *self.system.descendants()]:
            if obj._stats is not None:
                obj._stats.reset()

    @property
    def in_roi(self) -> bool:
        return self.work_begin_count > self.work_end_count
