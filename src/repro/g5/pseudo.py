"""m5-style pseudo-ops: guest hooks into the simulator.

gem5 guests use "m5 ops" (magic instructions) to talk to the simulator:
reset the statistics at the region of interest, dump them, mark work
boundaries, or exit.  SimRISC reserves the ``m5op`` opcode for the same
purpose; its 16-bit immediate selects the operation.

ROI (region-of-interest) markers also annotate the host-level execution
trace, so host profiling can be restricted to the measured region —
the methodology the paper's per-workload numbers rely on (counters are
read around the simulation loop, not around process startup).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .stats import dump_stats

if TYPE_CHECKING:  # pragma: no cover
    from .system import System

from .isa.pseudo_numbers import (  # noqa: F401  (re-exported)
    M5_DUMP_STATS,
    M5_EXIT,
    M5_RESET_STATS,
    M5_THREAD_EXIT,
    M5_THREAD_POLL,
    M5_THREAD_SPAWN,
    M5_WORK_BEGIN,
    M5_WORK_END,
)

#: Register indices of the thread-op calling convention (RISC-V ABI
#: names: a0/a1 carry operands and results, tp carries the thread id).
_A0, _A1, _TP = 10, 11, 4


class PseudoOpError(RuntimeError):
    """Raised on an unknown pseudo-op number."""


class _Thread:
    """Bookkeeping for one spawned guest thread."""

    __slots__ = ("tid", "cpu", "done")

    def __init__(self, tid: int, cpu) -> None:
        self.tid = tid
        self.cpu = cpu
        self.done = False


class PseudoOpHandler:
    """Services m5 ops for one system.

    Control plane: every pseudo-op executes synchronously at a
    guest-visible serialization point, so the handler may touch any
    domain's state (the ownership map classifies it accordingly).  The
    thread ops implement a minimal runtime on top of the N-core system:
    ``spawn`` assigns a parked core, seeds its registers (pc, a
    per-thread stack, the argument in a0, the tid in tp) and schedules
    its start event; ``exit`` parks the calling core; ``poll`` lets the
    guest build ``join`` as a spin loop.
    """

    def __init__(self, system: "System") -> None:
        self.system = system
        self.stat_dumps: list[dict[str, float]] = []
        self.work_begin_count = 0
        self.work_end_count = 0
        #: Times the guest zeroed the statistics (M5_RESET_STATS or
        #: M5_WORK_BEGIN).  The sampling profiler anchors its interval
        #: accounting to the *last* reset so reconstructed stats share
        #: the ROI-relative semantics of an uninterrupted run.
        self.reset_count = 0
        #: Spawned guest threads by tid (the main thread is tid 0 and
        #: never appears here).
        self.threads: dict[int, _Thread] = {}
        self._next_tid = 1

    def handle(self, op: int, cpu=None) -> None:
        """Dispatch one m5 pseudo-op by its immediate number.

        ``cpu`` is the core that executed the m5op (None falls back to
        the boot core, for direct calls in tests).
        """
        system = self.system
        if op == M5_EXIT:
            (cpu if cpu is not None else system.cpu).halt(
                "m5_exit instruction encountered")
        elif op == M5_RESET_STATS:
            self._reset_stats()
        elif op == M5_DUMP_STATS:
            self.stat_dumps.append(dump_stats(system))
        elif op == M5_WORK_BEGIN:
            self.work_begin_count += 1
            self._reset_stats()
            system.recorder.mark_roi_begin()
        elif op == M5_WORK_END:
            self.work_end_count += 1
            self.stat_dumps.append(dump_stats(system))
            system.recorder.mark_roi_end()
        elif op == M5_THREAD_SPAWN:
            self._thread_spawn(cpu if cpu is not None else system.cpu)
        elif op == M5_THREAD_EXIT:
            self._thread_exit(cpu if cpu is not None else system.cpu)
        elif op == M5_THREAD_POLL:
            self._thread_poll(cpu if cpu is not None else system.cpu)
        else:
            raise PseudoOpError(f"unknown m5 pseudo-op {op:#x}")

    # ------------------------------------------------------------------
    # thread runtime
    # ------------------------------------------------------------------
    def _free_core(self):
        busy = {id(thread.cpu) for thread in self.threads.values()
                if not thread.done}
        for core in self.system.cpus[1:]:
            if core.halted and id(core) not in busy:
                return core
        return None

    def _thread_spawn(self, caller) -> None:
        entry = caller.regs.read_int(_A0)
        arg = caller.regs.read_int(_A1)
        worker = self._free_core()
        if worker is None:
            caller.regs.write_int(_A0, (1 << 64) - 1)  # -1: no core free
            return
        process = self.system.process
        if process is None:
            raise PseudoOpError("thread spawn requires an SE-mode process")
        tid = self._next_tid
        self._next_tid += 1
        self.threads[tid] = _Thread(tid, worker)
        sanitizer = self.system.sanitizer
        if sanitizer is not None:
            sanitizer.enter(worker)
        try:
            worker.regs.pc = entry
            worker.regs.write_int(2, process.stack_top_for(tid))  # sp
            worker.regs.write_int(_A0, arg)
            worker.regs.write_int(_TP, tid)
            worker.unpark()
            self._start_worker(caller, worker)
        finally:
            if sanitizer is not None:
                sanitizer.leave()
        caller.regs.write_int(_A0, tid)

    def _start_worker(self, caller, worker) -> None:
        """Schedule the worker's start event at the caller's current tick.

        Same queue: a plain schedule.  Different queues (sharded
        multi-core): the same fresh-event + window-clamp protocol a
        BoundaryLink delivery uses, so the merged event order stays
        exact.
        """
        caller_queue = caller.eventq
        worker_queue = worker.eventq
        when = caller_queue.now
        event = worker.thread_start_event(when)
        if worker_queue is caller_queue:
            # Same-domain spawn: the guard above proves the worker's
            # queue IS the caller's, so this is an intra-domain
            # schedule, not a boundary bypass.
            caller_queue.schedule(event, when)  # lint: no-event-safety
        else:
            worker_queue.schedule_fresh(event, when)
            caller_queue.clamp_window((when, event.priority, event._seq))

    def _thread_exit(self, cpu) -> None:
        tid = cpu.regs.read_int(_TP)
        thread = self.threads.get(tid)
        if thread is None or thread.cpu is not cpu:
            raise PseudoOpError(
                f"thread exit from {cpu.path} with bad tid {tid}")
        thread.done = True
        cpu.park()

    def _thread_poll(self, cpu) -> None:
        tid = cpu.regs.read_int(_A0)
        thread = self.threads.get(tid)
        if thread is None:
            raise PseudoOpError(f"thread poll for unknown tid {tid}")
        cpu.regs.write_int(_A0, 1 if thread.done else 0)

    def _reset_stats(self) -> None:
        self.reset_count += 1
        for obj in [self.system, *self.system.descendants()]:
            if obj._stats is not None:
                obj._stats.reset()

    @property
    def in_roi(self) -> bool:
        return self.work_begin_count > self.work_end_count
