"""Syscall numbers and emulation helpers for SE mode.

SE (system-call emulation) mode services guest syscalls directly on the
"host" — here, in Python — exactly like gem5's SE mode bypasses the
simulated OS.  Numbers follow the RISC-V Linux convention so workloads
read naturally.
"""

from __future__ import annotations

# RISC-V Linux syscall numbers (subset).
SYS_EXIT = 93
SYS_EXIT_GROUP = 94
SYS_WRITE = 64
SYS_BRK = 214
SYS_CLOCK_GETTIME = 113
SYS_GETRANDOM = 278

#: Console file descriptors accepted by SYS_WRITE.
STDOUT_FD = 1
STDERR_FD = 2


class SyscallError(RuntimeError):
    """Raised for unknown or malformed guest syscalls."""


class DeterministicRandom:
    """A tiny LCG so SYS_GETRANDOM is reproducible across runs."""

    MULTIPLIER = 6364136223846793005
    INCREMENT = 1442695040888963407
    MASK = (1 << 64) - 1

    def __init__(self, seed: int = 0x9E3779B97F4A7C15) -> None:
        self.state = seed & self.MASK

    def next_byte(self) -> int:
        self.state = (self.state * self.MULTIPLIER + self.INCREMENT) & self.MASK
        return (self.state >> 33) & 0xFF

    def fill(self, count: int) -> bytes:
        return bytes(self.next_byte() for _ in range(count))
