"""SE (system-call emulation) mode: processes and syscall servicing."""

from .process import Process
from .syscalls import (
    SYS_BRK,
    SYS_CLOCK_GETTIME,
    SYS_EXIT,
    SYS_EXIT_GROUP,
    SYS_GETRANDOM,
    SYS_WRITE,
    DeterministicRandom,
    SyscallError,
)

__all__ = [
    "DeterministicRandom",
    "Process",
    "SYS_BRK",
    "SYS_CLOCK_GETTIME",
    "SYS_EXIT",
    "SYS_EXIT_GROUP",
    "SYS_GETRANDOM",
    "SYS_WRITE",
    "SyscallError",
]
