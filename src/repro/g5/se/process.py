"""SE-mode guest processes.

A :class:`Process` owns one assembled guest program plus its memory
layout (text, heap, stack) and services its syscalls, mirroring gem5's
``Process``/``SEWorkload`` pair.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..isa import Program
from .syscalls import (
    STDERR_FD,
    STDOUT_FD,
    SYS_BRK,
    SYS_CLOCK_GETTIME,
    SYS_EXIT,
    SYS_EXIT_GROUP,
    SYS_GETRANDOM,
    SYS_WRITE,
    DeterministicRandom,
    SyscallError,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..cpus.base import BaseCPU
    from ..mem.physmem import PhysicalMemory


class Process:
    """One guest program plus its address-space layout."""

    def __init__(self, name: str, program: Program, mem_size: int,
                 stack_size: int = 64 * 1024) -> None:
        self.name = name
        self.program = program
        self.mem_size = mem_size
        self.entry = program.entry
        self.stack_top = mem_size - 16
        self.stack_limit = mem_size - stack_size
        self.brk = (program.end + 0xFFF) & ~0xFFF  # page-aligned heap start
        if self.brk >= self.stack_limit:
            raise ValueError(
                f"program {name!r} does not fit below the stack: "
                f"text ends at {program.end:#x}, stack starts at "
                f"{self.stack_limit:#x}")
        self.exit_code: Optional[int] = None
        self.console = bytearray()
        self._random = DeterministicRandom()
        self.syscall_counts: dict[int, int] = {}

    #: Stack carved out of the main stack region for each spawned thread.
    THREAD_STACK_SIZE = 8 * 1024

    def stack_top_for(self, tid: int) -> int:
        """Stack top for spawned thread ``tid`` (tid 0 = the main stack).

        Thread stacks are carved downward from the main stack top in
        fixed slots; the guest runtime keeps per-thread frames small, so
        8 KiB each keeps even 8 threads inside the 64 KiB stack region.
        """
        top = self.stack_top - tid * self.THREAD_STACK_SIZE
        if top - self.THREAD_STACK_SIZE < self.stack_limit:
            raise ValueError(
                f"process {self.name!r}: no stack room for thread {tid}")
        return top

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def load(self, memory: "PhysicalMemory") -> None:
        """Write the program image into guest memory (the loader)."""
        addr = self.program.base
        for word in self.program.words:
            memory.write(addr, 4, word)
            addr += 4

    # ------------------------------------------------------------------
    # syscall dispatch
    # ------------------------------------------------------------------
    def handle_syscall(self, cpu: "BaseCPU") -> None:
        """Service the ecall the CPU just executed."""
        num = cpu.read_int(17)  # a7
        self.syscall_counts[num] = self.syscall_counts.get(num, 0) + 1
        if num in (SYS_EXIT, SYS_EXIT_GROUP):
            self.exit_code = cpu.read_int(10)  # a0
            cpu.halt("target called exit()")
        elif num == SYS_WRITE:
            cpu.write_int(10, self._sys_write(cpu))
        elif num == SYS_BRK:
            cpu.write_int(10, self._sys_brk(cpu.read_int(10)))
        elif num == SYS_CLOCK_GETTIME:
            cpu.write_int(10, 0)
            cpu.write_int(11, cpu.now)  # ticks, in lieu of a timespec
        elif num == SYS_GETRANDOM:
            cpu.write_int(10, self._sys_getrandom(cpu))
        else:
            raise SyscallError(
                f"process {self.name!r}: unimplemented syscall {num}")

    def _sys_write(self, cpu: "BaseCPU") -> int:
        fd = cpu.read_int(10)
        buf = cpu.read_int(11)
        count = cpu.read_int(12)
        if fd not in (STDOUT_FD, STDERR_FD):
            return -9  # -EBADF
        for offset in range(count):
            self.console.append(cpu.read_mem(buf + offset, 1))
        return count

    def _sys_brk(self, requested: int) -> int:
        if requested == 0:
            return self.brk
        if requested >= self.stack_limit:
            return self.brk  # refuse: collide with stack
        if requested > self.brk:
            self.brk = requested
        return self.brk

    def _sys_getrandom(self, cpu: "BaseCPU") -> int:
        buf = cpu.read_int(10)
        count = cpu.read_int(11)
        for offset, byte in enumerate(self._random.fill(count)):
            cpu.write_mem(buf + offset, 1, byte)
        return count

    @property
    def console_text(self) -> str:
        return self.console.decode("utf-8", errors="replace")
