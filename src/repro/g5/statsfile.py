"""gem5-style ``stats.txt`` output.

gem5 ends every run by dumping its statistics to ``m5out/stats.txt`` in
a fixed text format (``name  value  # description``) that a large
ecosystem of scripts parses.  This module writes and parses that format
for g5 runs, so downstream tooling built for gem5 output works on ours.
"""

from __future__ import annotations

from typing import TextIO, Union

from .stats import Distribution, VectorStat

Number = Union[int, float]

BEGIN_MARKER = "---------- Begin Simulation Statistics ----------"
END_MARKER = "---------- End Simulation Statistics   ----------"


def _format_value(value: Number) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6f}"


def write_stats(root, stream: TextIO) -> None:
    """Dump every statistic below ``root`` in gem5's stats.txt format."""
    stream.write(BEGIN_MARKER + "\n")
    for obj in [root, *root.descendants()]:
        group = obj._stats
        if group is None:
            continue
        for stat in group:
            name = f"{obj.path}.{stat.name}"
            desc = stat.desc or "(no description)"
            if isinstance(stat, VectorStat):
                for label, value in stat.items():
                    stream.write(f"{name}::{label:<24} "
                                 f"{_format_value(value):>14} # {desc}\n")
                stream.write(f"{name}::total{'':<19} "
                             f"{_format_value(stat.value()):>14} # {desc}\n")
            elif isinstance(stat, Distribution):
                stream.write(f"{name}::samples{'':<17} "
                             f"{_format_value(stat.samples):>14} # {desc}\n")
                stream.write(f"{name}::mean{'':<20} "
                             f"{_format_value(stat.mean):>14} # {desc}\n")
            else:
                stream.write(f"{name:<48} "
                             f"{_format_value(stat.value()):>14} # {desc}\n")
    stream.write(END_MARKER + "\n")


def save_stats(root, path) -> None:
    """Write stats.txt to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        write_stats(root, handle)


def parse_stats(text: str) -> dict[str, float]:
    """Parse a stats.txt body back into a flat name->value mapping.

    Tolerates gem5's real format quirks: comment-only lines, the
    begin/end markers, and blank lines.
    """
    values: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("-"):
            continue
        body = line.split("#", 1)[0].strip()
        if not body:
            continue
        parts = body.split()
        if len(parts) < 2:
            continue
        name, raw = parts[0], parts[1]
        try:
            values[name] = float(raw)
        except ValueError:
            continue
    return values


def load_stats(path) -> dict[str, float]:
    """Read and parse a stats.txt file."""
    with open(path, encoding="utf-8") as handle:
        return parse_stats(handle.read())
