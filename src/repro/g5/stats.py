"""gem5-style statistics framework.

Models register :class:`Scalar`, :class:`Formula`, :class:`Distribution`
and :class:`VectorStat` statistics in per-SimObject groups; a run ends by
dumping all groups into a flat ``stats.txt``-like mapping, which the
experiment harness consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Union

Number = Union[int, float]


class Stat:
    """Base class for all statistics."""

    def __init__(self, name: str, desc: str = "") -> None:
        if not name:
            raise ValueError("statistic requires a non-empty name")
        self.name = name
        self.desc = desc

    def value(self) -> Number:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


class Scalar(Stat):
    """A simple counter or gauge."""

    def __init__(self, name: str, desc: str = "", init: Number = 0) -> None:
        super().__init__(name, desc)
        self._init = init
        self._value: Number = init

    def __iadd__(self, amount: Number) -> "Scalar":
        self._value += amount
        return self

    def inc(self, amount: Number = 1) -> None:
        self._value += amount

    def set(self, value: Number) -> None:
        self._value = value

    def value(self) -> Number:
        return self._value

    def reset(self) -> None:
        self._value = self._init

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Scalar {self.name}={self._value}>"


class Formula(Stat):
    """A derived statistic computed lazily from other stats."""

    def __init__(self, name: str, fn: Callable[[], Number], desc: str = "") -> None:
        super().__init__(name, desc)
        self._fn = fn

    def value(self) -> Number:
        try:
            return self._fn()
        except ZeroDivisionError:
            return 0.0

    def reset(self) -> None:
        pass


class VectorStat(Stat):
    """A fixed set of named sub-counters (gem5's Vector)."""

    def __init__(self, name: str, labels: list[str], desc: str = "") -> None:
        super().__init__(name, desc)
        if not labels:
            raise ValueError(f"vector stat {name!r} needs at least one label")
        self.labels = list(labels)
        self._values: dict[str, Number] = {label: 0 for label in labels}

    def inc(self, label: str, amount: Number = 1) -> None:
        if label not in self._values:
            raise KeyError(f"{self.name} has no bucket {label!r}")
        self._values[label] += amount

    def __getitem__(self, label: str) -> Number:
        return self._values[label]

    def value(self) -> Number:
        return sum(self._values.values())

    def items(self) -> Iterator[tuple[str, Number]]:
        return iter(self._values.items())

    def reset(self) -> None:
        for label in self._values:
            self._values[label] = 0


class Distribution(Stat):
    """A bucketed histogram with running mean/min/max."""

    def __init__(self, name: str, lo: Number, hi: Number, n_buckets: int = 16,
                 desc: str = "") -> None:
        super().__init__(name, desc)
        if hi <= lo:
            raise ValueError(f"distribution {name!r}: hi must exceed lo")
        if n_buckets <= 0:
            raise ValueError(f"distribution {name!r}: need >=1 bucket")
        self.lo = lo
        self.hi = hi
        self.n_buckets = n_buckets
        self.buckets = [0] * n_buckets
        self.underflow = 0
        self.overflow = 0
        self.samples = 0
        self.total: Number = 0
        self.min_value: Optional[Number] = None
        self.max_value: Optional[Number] = None

    def sample(self, value: Number, count: int = 1) -> None:
        self.samples += count
        self.total += value * count
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        if value < self.lo:
            self.underflow += count
        elif value >= self.hi:
            self.overflow += count
        else:
            width = (self.hi - self.lo) / self.n_buckets
            index = int((value - self.lo) / width)
            self.buckets[min(index, self.n_buckets - 1)] += count

    @property
    def mean(self) -> float:
        if self.samples == 0:
            return 0.0
        return self.total / self.samples

    def value(self) -> Number:
        return self.mean

    def reset(self) -> None:
        self.buckets = [0] * self.n_buckets
        self.underflow = self.overflow = 0
        self.samples = 0
        self.total = 0
        self.min_value = self.max_value = None


@dataclass
class StatGroup:
    """All statistics belonging to one SimObject."""

    owner_path: str
    _stats: dict[str, Stat] = field(default_factory=dict)

    def _add(self, stat: Stat) -> Stat:
        if stat.name in self._stats:
            raise ValueError(
                f"{self.owner_path} already has a stat named {stat.name!r}")
        self._stats[stat.name] = stat
        return stat

    def scalar(self, name: str, desc: str = "") -> Scalar:
        return self._add(Scalar(name, desc))  # type: ignore[return-value]

    def formula(self, name: str, fn: Callable[[], Number],
                desc: str = "") -> Formula:
        return self._add(Formula(name, fn, desc))  # type: ignore[return-value]

    def vector(self, name: str, labels: list[str], desc: str = "") -> VectorStat:
        return self._add(VectorStat(name, labels, desc))  # type: ignore[return-value]

    def distribution(self, name: str, lo: Number, hi: Number,
                     n_buckets: int = 16, desc: str = "") -> Distribution:
        return self._add(
            Distribution(name, lo, hi, n_buckets, desc))  # type: ignore[return-value]

    def __getitem__(self, name: str) -> Stat:
        return self._stats[name]

    def __contains__(self, name: str) -> bool:
        return name in self._stats

    def __iter__(self) -> Iterator[Stat]:
        return iter(self._stats.values())

    def reset(self) -> None:
        for stat in self._stats.values():
            stat.reset()


def dump_stats(root) -> dict[str, Number]:
    """Flatten every stat below ``root`` into a ``path.stat -> value`` map.

    Vector stats expand one entry per bucket (``path.stat::label``),
    mirroring gem5's stats.txt format.
    """
    flat: dict[str, Number] = {}
    for obj in [root, *root.descendants()]:
        group = obj._stats
        if group is None:
            continue
        for stat in group:
            key = f"{obj.path}.{stat.name}"
            flat[key] = stat.value()
            if isinstance(stat, VectorStat):
                for label, value in stat.items():
                    flat[f"{key}::{label}"] = value
    return flat
