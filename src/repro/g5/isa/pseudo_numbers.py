"""m5 pseudo-op numbers shared by the assembler and the handler.

Lives under ``isa`` so the assembler does not import simulator modules;
:mod:`repro.g5.pseudo` re-exports these for the handler side.
"""

M5_EXIT = 0x21
M5_RESET_STATS = 0x40
M5_DUMP_STATS = 0x41
M5_WORK_BEGIN = 0x5A
M5_WORK_END = 0x5B
# Thread runtime (multi-core SE mode): argument registers carry the
# operands, a0 carries the result (see repro.g5.pseudo).
M5_THREAD_SPAWN = 0x60
M5_THREAD_EXIT = 0x61
M5_THREAD_POLL = 0x62
