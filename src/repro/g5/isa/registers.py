"""SimRISC register file definitions.

SimRISC is the small RISC guest ISA executed by the g5 CPU models.  It is
loosely RISC-V-shaped: 32 64-bit integer registers (``x0`` hard-wired to
zero), 32 double-precision float registers, and a handful of ABI aliases
used by the assembler and the syscall layer.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32

#: ABI aliases, RISC-V style: a0..a7 argument regs, sp, ra, t*/s* temps.
ABI_ALIASES = {
    "zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
    "t0": 5, "t1": 6, "t2": 7,
    "s0": 8, "fp": 8, "s1": 9,
    "a0": 10, "a1": 11, "a2": 12, "a3": 13,
    "a4": 14, "a5": 15, "a6": 16, "a7": 17,
    "s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23,
    "s8": 24, "s9": 25, "s10": 26, "s11": 27,
    "t3": 28, "t4": 29, "t5": 30, "t6": 31,
}

#: Register used for syscall numbers / return codes (RISC-V convention).
SYSCALL_NUM_REG = ABI_ALIASES["a7"]
SYSCALL_RET_REG = ABI_ALIASES["a0"]
SYSCALL_ARG_REGS = tuple(ABI_ALIASES[f"a{i}"] for i in range(7))

_MASK64 = (1 << 64) - 1


def parse_reg(name: str) -> int:
    """Resolve an integer-register name (``x7``, ``a0``, ``sp``) to its index."""
    if name in ABI_ALIASES:
        return ABI_ALIASES[name]
    if name.startswith("x"):
        try:
            index = int(name[1:])
        except ValueError:
            raise ValueError(f"bad register name {name!r}") from None
        if 0 <= index < NUM_INT_REGS:
            return index
    raise ValueError(f"bad register name {name!r}")


def parse_freg(name: str) -> int:
    """Resolve a float-register name (``f0``..``f31``) to its index."""
    if name.startswith("f"):
        try:
            index = int(name[1:])
        except ValueError:
            raise ValueError(f"bad float register name {name!r}") from None
        if 0 <= index < NUM_FP_REGS:
            return index
    raise ValueError(f"bad float register name {name!r}")


def to_signed64(value: int) -> int:
    """Interpret the low 64 bits of ``value`` as a signed integer."""
    value &= _MASK64
    if value >= 1 << 63:
        value -= 1 << 64
    return value


def to_unsigned64(value: int) -> int:
    """Truncate ``value`` to its low 64 bits."""
    return value & _MASK64


class RegisterFile:
    """Architectural register state for one hardware thread."""

    __slots__ = ("ints", "floats", "pc")

    def __init__(self) -> None:
        self.ints = [0] * NUM_INT_REGS
        self.floats = [0.0] * NUM_FP_REGS
        self.pc = 0

    def read_int(self, index: int) -> int:
        return self.ints[index]

    def write_int(self, index: int, value: int) -> None:
        if index != 0:  # x0 is hard-wired to zero
            self.ints[index] = to_unsigned64(value)

    def read_fp(self, index: int) -> float:
        return self.floats[index]

    def write_fp(self, index: int, value: float) -> None:
        self.floats[index] = float(value)

    def copy(self) -> "RegisterFile":
        dup = RegisterFile()
        dup.ints = list(self.ints)
        dup.floats = list(self.floats)
        dup.pc = self.pc
        return dup
