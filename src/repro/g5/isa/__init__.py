"""SimRISC: the guest ISA executed by the g5 CPU models."""

from .assembler import Assembler, AssemblyError, Program
from .decoder import DecodeError, Decoder
from .instructions import INST_BYTES, ExecContext, Opcode, StaticInst, encode
from .registers import (
    NUM_FP_REGS,
    NUM_INT_REGS,
    RegisterFile,
    parse_freg,
    parse_reg,
    to_signed64,
    to_unsigned64,
)

__all__ = [
    "Assembler",
    "AssemblyError",
    "DecodeError",
    "Decoder",
    "ExecContext",
    "INST_BYTES",
    "NUM_FP_REGS",
    "NUM_INT_REGS",
    "Opcode",
    "Program",
    "RegisterFile",
    "StaticInst",
    "encode",
    "parse_freg",
    "parse_reg",
    "to_signed64",
    "to_unsigned64",
]
