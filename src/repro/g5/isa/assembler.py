"""A small macro assembler for SimRISC.

Guest workloads (:mod:`repro.workloads`) are written against this builder
API rather than a text syntax: each mnemonic method appends one
instruction, labels give symbolic branch targets, and ``assemble``
resolves labels and returns the encoded program image.

Example::

    asm = Assembler(base=0x1000)
    asm.li("t0", 10)
    asm.label("loop")
    asm.addi("t0", "t0", -1)
    asm.bne("t0", "zero", "loop")
    asm.halt()
    program = asm.assemble()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from .instructions import INST_BYTES, Opcode, encode
from .registers import parse_freg, parse_reg

Reg = Union[str, int]


class AssemblyError(ValueError):
    """Raised for unresolved labels or out-of-range operands."""


@dataclass
class _Pending:
    """One not-yet-encoded instruction."""

    opcode: int
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    label: Optional[str] = None  # branch/jump target to resolve


@dataclass
class Program:
    """An assembled guest program image."""

    base: int
    words: list[int]
    labels: dict[str, int]
    entry: int

    @property
    def size_bytes(self) -> int:
        return len(self.words) * INST_BYTES

    @property
    def end(self) -> int:
        return self.base + self.size_bytes

    def address_of(self, label: str) -> int:
        try:
            return self.labels[label]
        except KeyError:
            raise AssemblyError(f"no label {label!r} in program") from None


class Assembler:
    """Builder-style SimRISC assembler."""

    def __init__(self, base: int = 0x1000) -> None:
        if base % INST_BYTES:
            raise AssemblyError(f"base address {base:#x} is not word aligned")
        self.base = base
        self._pending: list[_Pending] = []
        self._labels: dict[str, int] = {}

    # ------------------------------------------------------------------
    # label handling
    # ------------------------------------------------------------------
    def label(self, name: str) -> None:
        """Bind ``name`` to the address of the next instruction."""
        if name in self._labels:
            raise AssemblyError(f"label {name!r} defined twice")
        self._labels[name] = self.here

    @property
    def here(self) -> int:
        """Address of the next instruction to be emitted."""
        return self.base + len(self._pending) * INST_BYTES

    # ------------------------------------------------------------------
    # emission helpers
    # ------------------------------------------------------------------
    def _emit(self, opcode: int, rd: int = 0, rs1: int = 0, rs2: int = 0,
              imm: int = 0, label: Optional[str] = None) -> None:
        self._pending.append(_Pending(opcode, rd, rs1, rs2, imm, label))

    @staticmethod
    def _r(reg: Reg) -> int:
        return reg if isinstance(reg, int) else parse_reg(reg)

    @staticmethod
    def _f(reg: Reg) -> int:
        return reg if isinstance(reg, int) else parse_freg(reg)

    # -- integer R-type ---------------------------------------------------
    def add(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(Opcode.ADD, self._r(rd), self._r(rs1), self._r(rs2))

    def sub(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(Opcode.SUB, self._r(rd), self._r(rs1), self._r(rs2))

    def mul(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(Opcode.MUL, self._r(rd), self._r(rs1), self._r(rs2))

    def div(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(Opcode.DIV, self._r(rd), self._r(rs1), self._r(rs2))

    def rem(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(Opcode.REM, self._r(rd), self._r(rs1), self._r(rs2))

    def and_(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(Opcode.AND, self._r(rd), self._r(rs1), self._r(rs2))

    def or_(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(Opcode.OR, self._r(rd), self._r(rs1), self._r(rs2))

    def xor(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(Opcode.XOR, self._r(rd), self._r(rs1), self._r(rs2))

    def sll(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(Opcode.SLL, self._r(rd), self._r(rs1), self._r(rs2))

    def srl(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(Opcode.SRL, self._r(rd), self._r(rs1), self._r(rs2))

    def sra(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(Opcode.SRA, self._r(rd), self._r(rs1), self._r(rs2))

    def slt(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(Opcode.SLT, self._r(rd), self._r(rs1), self._r(rs2))

    def sltu(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(Opcode.SLTU, self._r(rd), self._r(rs1), self._r(rs2))

    # -- integer I-type ---------------------------------------------------
    def addi(self, rd: Reg, rs1: Reg, imm: int) -> None:
        self._emit(Opcode.ADDI, self._r(rd), self._r(rs1), imm=imm)

    def andi(self, rd: Reg, rs1: Reg, imm: int) -> None:
        self._emit(Opcode.ANDI, self._r(rd), self._r(rs1), imm=imm)

    def ori(self, rd: Reg, rs1: Reg, imm: int) -> None:
        self._emit(Opcode.ORI, self._r(rd), self._r(rs1), imm=imm)

    def xori(self, rd: Reg, rs1: Reg, imm: int) -> None:
        self._emit(Opcode.XORI, self._r(rd), self._r(rs1), imm=imm)

    def slli(self, rd: Reg, rs1: Reg, imm: int) -> None:
        self._emit(Opcode.SLLI, self._r(rd), self._r(rs1), imm=imm)

    def srli(self, rd: Reg, rs1: Reg, imm: int) -> None:
        self._emit(Opcode.SRLI, self._r(rd), self._r(rs1), imm=imm)

    def slti(self, rd: Reg, rs1: Reg, imm: int) -> None:
        self._emit(Opcode.SLTI, self._r(rd), self._r(rs1), imm=imm)

    def lui(self, rd: Reg, imm: int) -> None:
        self._emit(Opcode.LUI, self._r(rd), imm=imm)

    # -- pseudo-instructions ------------------------------------------------
    def nop(self) -> None:
        self._emit(Opcode.NOP)

    def mv(self, rd: Reg, rs1: Reg) -> None:
        self.addi(rd, rs1, 0)

    def li(self, rd: Reg, value: int) -> None:
        """Load an arbitrary constant (expands to LUI+ADDI when needed)."""
        if -(1 << 15) <= value < (1 << 15):
            self.addi(rd, "zero", value)
            return
        if not -(1 << 31) <= value < (1 << 31):
            raise AssemblyError(f"li constant {value} out of 32-bit range")
        high = value >> 11
        low = value - (high << 11)
        if not -(1 << 15) <= low < (1 << 15):  # pragma: no cover - defensive
            raise AssemblyError(f"li split failed for {value}")
        self.lui(rd, high)
        if low:
            self.addi(rd, rd, low)

    def la(self, rd: Reg, label: str) -> None:
        """Load a label's address (resolved at assemble time via JAL trick).

        Implemented as a pending LUI/ADDI pair patched during assembly.
        """
        # Reserve two slots; patch in assemble().
        self._emit(Opcode.LUI, self._r(rd), imm=0, label=f"@hi:{label}")
        self._emit(Opcode.ADDI, self._r(rd), self._r(rd), imm=0,
                   label=f"@lo:{label}")

    # -- memory --------------------------------------------------------------
    def lb(self, rd: Reg, rs1: Reg, imm: int = 0) -> None:
        self._emit(Opcode.LB, self._r(rd), self._r(rs1), imm=imm)

    def lw(self, rd: Reg, rs1: Reg, imm: int = 0) -> None:
        self._emit(Opcode.LW, self._r(rd), self._r(rs1), imm=imm)

    def ld(self, rd: Reg, rs1: Reg, imm: int = 0) -> None:
        self._emit(Opcode.LD, self._r(rd), self._r(rs1), imm=imm)

    def sb(self, rs2: Reg, rs1: Reg, imm: int = 0) -> None:
        self._emit(Opcode.SB, rs1=self._r(rs1), rs2=self._r(rs2), imm=imm)

    def sw(self, rs2: Reg, rs1: Reg, imm: int = 0) -> None:
        self._emit(Opcode.SW, rs1=self._r(rs1), rs2=self._r(rs2), imm=imm)

    def sd(self, rs2: Reg, rs1: Reg, imm: int = 0) -> None:
        self._emit(Opcode.SD, rs1=self._r(rs1), rs2=self._r(rs2), imm=imm)

    def fld(self, fd: Reg, rs1: Reg, imm: int = 0) -> None:
        self._emit(Opcode.FLD, self._f(fd), self._r(rs1), imm=imm)

    def fsd(self, fs2: Reg, rs1: Reg, imm: int = 0) -> None:
        self._emit(Opcode.FSD, rs1=self._r(rs1), rs2=self._f(fs2), imm=imm)

    # -- atomics -------------------------------------------------------------
    def ll(self, rd: Reg, rs1: Reg, imm: int = 0) -> None:
        """Load-linked: load 8 bytes and take a reservation on the line."""
        self._emit(Opcode.LL, self._r(rd), self._r(rs1), imm=imm)

    def sc(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """Store-conditional: rd <- 0 on success, 1 on a lost reservation."""
        self._emit(Opcode.SC, self._r(rd), self._r(rs1), self._r(rs2))

    # -- control flow -----------------------------------------------------
    def _branch(self, opcode: int, rs1: Reg, rs2: Reg, target: str) -> None:
        self._emit(opcode, rs1=self._r(rs1), rs2=self._r(rs2), label=target)

    def beq(self, rs1: Reg, rs2: Reg, target: str) -> None:
        self._branch(Opcode.BEQ, rs1, rs2, target)

    def bne(self, rs1: Reg, rs2: Reg, target: str) -> None:
        self._branch(Opcode.BNE, rs1, rs2, target)

    def blt(self, rs1: Reg, rs2: Reg, target: str) -> None:
        self._branch(Opcode.BLT, rs1, rs2, target)

    def bge(self, rs1: Reg, rs2: Reg, target: str) -> None:
        self._branch(Opcode.BGE, rs1, rs2, target)

    def bltu(self, rs1: Reg, rs2: Reg, target: str) -> None:
        self._branch(Opcode.BLTU, rs1, rs2, target)

    def bgeu(self, rs1: Reg, rs2: Reg, target: str) -> None:
        self._branch(Opcode.BGEU, rs1, rs2, target)

    def jal(self, rd: Reg, target: str) -> None:
        self._emit(Opcode.JAL, self._r(rd), label=target)

    def j(self, target: str) -> None:
        self.jal("zero", target)

    def call(self, target: str) -> None:
        self.jal("ra", target)

    def jalr(self, rd: Reg, rs1: Reg, imm: int = 0) -> None:
        self._emit(Opcode.JALR, self._r(rd), self._r(rs1), imm=imm)

    def ret(self) -> None:
        self.jalr("zero", "ra", 0)

    # -- floating point -----------------------------------------------------
    def fadd(self, fd: Reg, fs1: Reg, fs2: Reg) -> None:
        self._emit(Opcode.FADD, self._f(fd), self._f(fs1), self._f(fs2))

    def fsub(self, fd: Reg, fs1: Reg, fs2: Reg) -> None:
        self._emit(Opcode.FSUB, self._f(fd), self._f(fs1), self._f(fs2))

    def fmul(self, fd: Reg, fs1: Reg, fs2: Reg) -> None:
        self._emit(Opcode.FMUL, self._f(fd), self._f(fs1), self._f(fs2))

    def fdiv(self, fd: Reg, fs1: Reg, fs2: Reg) -> None:
        self._emit(Opcode.FDIV, self._f(fd), self._f(fs1), self._f(fs2))

    def fsqrt(self, fd: Reg, fs1: Reg) -> None:
        self._emit(Opcode.FSQRT, self._f(fd), self._f(fs1))

    def fmin(self, fd: Reg, fs1: Reg, fs2: Reg) -> None:
        self._emit(Opcode.FMIN, self._f(fd), self._f(fs1), self._f(fs2))

    def fmax(self, fd: Reg, fs1: Reg, fs2: Reg) -> None:
        self._emit(Opcode.FMAX, self._f(fd), self._f(fs1), self._f(fs2))

    def fmadd(self, fd: Reg, fs1: Reg, fs2: Reg) -> None:
        self._emit(Opcode.FMADD, self._f(fd), self._f(fs1), self._f(fs2))

    def fmv(self, fd: Reg, fs1: Reg) -> None:
        self._emit(Opcode.FMV, self._f(fd), self._f(fs1))

    def fcvt_d_l(self, fd: Reg, rs1: Reg) -> None:
        self._emit(Opcode.FCVT_D_L, self._f(fd), self._r(rs1))

    def fcvt_l_d(self, rd: Reg, fs1: Reg) -> None:
        self._emit(Opcode.FCVT_L_D, self._r(rd), self._f(fs1))

    def flt(self, rd: Reg, fs1: Reg, fs2: Reg) -> None:
        self._emit(Opcode.FLT, self._r(rd), self._f(fs1), self._f(fs2))

    def fle(self, rd: Reg, fs1: Reg, fs2: Reg) -> None:
        self._emit(Opcode.FLE, self._r(rd), self._f(fs1), self._f(fs2))

    # -- system --------------------------------------------------------------
    def ecall(self) -> None:
        self._emit(Opcode.ECALL)

    def halt(self) -> None:
        self._emit(Opcode.HALT)

    # -- m5 pseudo-ops ---------------------------------------------------
    def m5op(self, op: int) -> None:
        """Emit a raw m5 pseudo instruction."""
        self._emit(Opcode.M5OP, imm=op)

    def m5_exit(self) -> None:
        from .pseudo_numbers import M5_EXIT

        self.m5op(M5_EXIT)

    def m5_reset_stats(self) -> None:
        from .pseudo_numbers import M5_RESET_STATS

        self.m5op(M5_RESET_STATS)

    def m5_dump_stats(self) -> None:
        from .pseudo_numbers import M5_DUMP_STATS

        self.m5op(M5_DUMP_STATS)

    def m5_work_begin(self) -> None:
        from .pseudo_numbers import M5_WORK_BEGIN

        self.m5op(M5_WORK_BEGIN)

    def m5_work_end(self) -> None:
        from .pseudo_numbers import M5_WORK_END

        self.m5op(M5_WORK_END)

    def m5_thread_spawn(self) -> None:
        """Spawn a thread: a0=entry, a1=arg in; a0=tid (or -1) out."""
        from .pseudo_numbers import M5_THREAD_SPAWN

        self.m5op(M5_THREAD_SPAWN)

    def m5_thread_exit(self) -> None:
        """Terminate the calling thread (parks its core)."""
        from .pseudo_numbers import M5_THREAD_EXIT

        self.m5op(M5_THREAD_EXIT)

    def m5_thread_poll(self) -> None:
        """Poll a thread: a0=tid in; a0=1 once it has exited, else 0."""
        from .pseudo_numbers import M5_THREAD_POLL

        self.m5op(M5_THREAD_POLL)

    # ------------------------------------------------------------------
    # final assembly
    # ------------------------------------------------------------------
    def assemble(self, entry: Optional[str] = None) -> Program:
        """Resolve labels and encode the program."""
        words: list[int] = []
        for index, pending in enumerate(self._pending):
            pc = self.base + index * INST_BYTES
            imm = pending.imm
            if pending.label is not None:
                imm = self._resolve(pending, pc)
            words.append(encode(pending.opcode, pending.rd, pending.rs1,
                                pending.rs2, imm))
        entry_addr = self.base if entry is None else self._label_addr(entry)
        return Program(self.base, words, dict(self._labels), entry_addr)

    def _label_addr(self, name: str) -> int:
        try:
            return self._labels[name]
        except KeyError:
            raise AssemblyError(f"undefined label {name!r}") from None

    def _resolve(self, pending: _Pending, pc: int) -> int:
        label = pending.label
        assert label is not None
        if label.startswith("@hi:"):
            return self._label_addr(label[4:]) >> 11
        if label.startswith("@lo:"):
            addr = self._label_addr(label[4:])
            return addr - ((addr >> 11) << 11)
        return self._label_addr(label) - pc
