"""SimRISC static instructions: semantics, flags, and encodings.

The design copies gem5's ``StaticInst`` split: a decoded instruction is an
immutable object describing *what* to do; *when* it happens is decided by
the CPU model driving it through an :class:`ExecContext`.  Memory
instructions expose ``ea``/``store_value``/``complete`` so timing CPUs can
split address generation from data delivery, while ``execute`` performs
the whole access for atomic-mode CPUs.

Encoding layout (32-bit word):

====== ======================= =========================================
format fields                  used by
====== ======================= =========================================
R      op rd rs1 rs2           register ALU / FP ops
I      op rd rs1 imm16         immediate ALU, loads, JALR
S      op rs1 rs2 imm11        stores
B      op rs1 rs2 imm11        conditional branches (byte offset)
U      op rd imm21             LUI (imm << 11), JAL (byte offset)
====== ======================= =========================================
"""

from __future__ import annotations

import math
import struct
from typing import Optional, Protocol

from .registers import to_signed64, to_unsigned64

# ---------------------------------------------------------------------------
# encoding constants
# ---------------------------------------------------------------------------
OP_SHIFT = 26
RD_SHIFT = 21
RS1_SHIFT = 16
RS2_SHIFT = 11
REG_MASK = 0x1F
IMM16_MASK = 0xFFFF
IMM11_MASK = 0x7FF
IMM21_MASK = 0x1FFFFF

INST_BYTES = 4


class Opcode:
    """SimRISC opcode space (6 bits)."""

    # R-type integer ALU
    ADD, SUB, MUL, DIV, REM, AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU = range(13)
    # I-type integer ALU
    ADDI, ANDI, ORI, XORI, SLLI, SRLI, SLTI = range(13, 20)
    LUI = 20
    # memory
    LB, LW, LD = 21, 22, 23
    SB, SW, SD = 24, 25, 26
    FLD, FSD = 27, 28
    # control
    BEQ, BNE, BLT, BGE, BLTU, BGEU = range(29, 35)
    JAL, JALR = 35, 36
    # FP
    FADD, FSUB, FMUL, FDIV, FSQRT, FMIN, FMAX, FMADD = range(37, 45)
    FCVT_D_L, FCVT_L_D, FLT, FLE, FMV = range(45, 50)
    # system
    ECALL, NOP, HALT, M5OP = 50, 51, 52, 53
    # atomics (LL/SC pair; SC is R-format so it can report success in rd)
    LL, SC = 54, 55

_R_ALU = {Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.REM,
          Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SLL, Opcode.SRL,
          Opcode.SRA, Opcode.SLT, Opcode.SLTU}
_I_ALU = {Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.SLLI,
          Opcode.SRLI, Opcode.SLTI}
_LOADS = {Opcode.LB: 1, Opcode.LW: 4, Opcode.LD: 8, Opcode.FLD: 8,
          Opcode.LL: 8}
_STORES = {Opcode.SB: 1, Opcode.SW: 4, Opcode.SD: 8, Opcode.FSD: 8}
_BRANCHES = {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE,
             Opcode.BLTU, Opcode.BGEU}
_FP_R = {Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FSQRT,
         Opcode.FMIN, Opcode.FMAX, Opcode.FMADD, Opcode.FLT, Opcode.FLE,
         Opcode.FMV, Opcode.FCVT_D_L, Opcode.FCVT_L_D}

MNEMONICS = {v: k.lower() for k, v in vars(Opcode).items()
             if not k.startswith("_") and isinstance(v, int)}


def _truncdiv(a: int, b: int) -> int:
    """C-style (truncate-toward-zero) integer division."""
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def _sext(value: int, bits: int) -> int:
    """Sign-extend the low ``bits`` of ``value``."""
    sign = 1 << (bits - 1)
    value &= (1 << bits) - 1
    return value - (1 << bits) if value & sign else value


def float_to_raw(value: float) -> int:
    """Bit-pattern of a double, as an unsigned 64-bit integer."""
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def raw_to_float(raw: int) -> float:
    """Double from its 64-bit bit-pattern."""
    return struct.unpack("<d", struct.pack("<Q", raw & ((1 << 64) - 1)))[0]


class ExecContext(Protocol):
    """What a StaticInst needs from the CPU model executing it."""

    def read_int(self, index: int) -> int: ...
    def write_int(self, index: int, value: int) -> None: ...
    def read_fp(self, index: int) -> float: ...
    def write_fp(self, index: int, value: float) -> None: ...
    @property
    def pc(self) -> int: ...
    def set_npc(self, addr: int) -> None: ...
    def read_mem(self, addr: int, size: int) -> int: ...
    def write_mem(self, addr: int, size: int, value: int) -> None: ...
    def syscall(self) -> None: ...
    def pseudo_op(self, op: int) -> None: ...
    def load_reserved(self, addr: int) -> None: ...
    def store_conditional(self, addr: int, size: int,
                          value: int) -> bool: ...


#: Functional-unit latency in cycles by opcode (detailed CPU models).
_OP_LATENCY = {Opcode.MUL: 3, Opcode.DIV: 12, Opcode.REM: 12,
               Opcode.FADD: 2, Opcode.FSUB: 2, Opcode.FMIN: 2,
               Opcode.FMAX: 2, Opcode.FMV: 2, Opcode.FCVT_D_L: 2,
               Opcode.FCVT_L_D: 2, Opcode.FLT: 2, Opcode.FLE: 2,
               Opcode.FMUL: 4, Opcode.FMADD: 4, Opcode.FDIV: 12,
               Opcode.FSQRT: 24}


class StaticInst:
    """One decoded SimRISC instruction.

    Decode-time precomputation (the threaded-code interpreter): all
    classification flags, the micro-op latency, and the bound per-opcode
    executor (``_exec``) are materialised as plain attributes when the
    instruction is decoded, so CPU models pay attribute loads — not
    property calls or dispatch chains — per executed instruction.  The
    decode cache makes this a one-time cost per distinct machine word.
    """

    __slots__ = ("machine_word", "opcode", "rd", "rs1", "rs2", "imm",
                 "_exec", "_msize", "op_latency",
                 "is_load", "is_store", "is_mem", "is_branch", "is_jump",
                 "is_control", "is_indirect", "is_call", "is_return",
                 "is_fp", "is_syscall", "is_halt")

    def __init__(self, machine_word: int) -> None:
        self.machine_word = machine_word
        op = self.opcode = (machine_word >> OP_SHIFT) & 0x3F
        self.rd = (machine_word >> RD_SHIFT) & REG_MASK
        self.rs1 = (machine_word >> RS1_SHIFT) & REG_MASK
        self.rs2 = (machine_word >> RS2_SHIFT) & REG_MASK
        if op in _I_ALU or op in _LOADS or op in (Opcode.JALR, Opcode.M5OP):
            self.imm = _sext(machine_word, 16)
        elif op in _STORES or op in _BRANCHES:
            self.imm = _sext(machine_word, 11)
        elif op in (Opcode.LUI, Opcode.JAL):
            self.imm = _sext(machine_word, 21)
        else:
            self.imm = 0
        # -- precomputed classification ---------------------------------
        self.is_load = op in _LOADS
        self.is_store = op in _STORES
        self.is_mem = self.is_load or self.is_store
        self.is_branch = op in _BRANCHES
        self.is_jump = op in (Opcode.JAL, Opcode.JALR)
        self.is_control = self.is_branch or self.is_jump
        self.is_indirect = op == Opcode.JALR
        self.is_call = self.is_jump and self.rd == 1  # link register ra
        self.is_return = (op == Opcode.JALR and self.rd == 0
                          and self.rs1 == 1)
        self.is_fp = op in _FP_R or op in (Opcode.FLD, Opcode.FSD)
        self.is_syscall = op == Opcode.ECALL
        self.is_halt = op == Opcode.HALT
        self._msize = _LOADS.get(op) or _STORES.get(op)
        if op == Opcode.SC:
            # Store-conditional is R-format (rd carries the success
            # flag) but classifies as a store so the cache and timing
            # paths charge a write access for the attempt.
            self.is_store = True
            self.is_mem = True
            self._msize = 8
        self.op_latency = _OP_LATENCY.get(op, 1)
        self._exec = _EXECUTORS.get(op)

    # -- classification -------------------------------------------------
    @property
    def mnemonic(self) -> str:
        return MNEMONICS.get(self.opcode, f"op{self.opcode}")

    @property
    def mem_size(self) -> int:
        size = self._msize
        if size is None:
            raise TypeError(f"{self.mnemonic} is not a memory instruction")
        return size

    # -- control-flow helpers --------------------------------------------
    def branch_target(self, pc: int) -> Optional[int]:
        """Static target for direct control flow (``None`` for indirect)."""
        if self.is_branch or self.opcode == Opcode.JAL:
            return pc + self.imm
        return None

    # -- memory helpers ---------------------------------------------------
    def ea(self, xc: ExecContext) -> int:
        """Effective address of a memory access."""
        return to_unsigned64(xc.read_int(self.rs1) + self.imm)

    def store_value(self, xc: ExecContext) -> int:
        """Raw integer value a store writes to memory."""
        if self.opcode == Opcode.FSD:
            return float_to_raw(xc.read_fp(self.rs2))
        size = self.mem_size
        return xc.read_int(self.rs2) & ((1 << (size * 8)) - 1)

    def complete(self, xc: ExecContext, raw: int) -> None:
        """Deliver load data to the destination register."""
        if self.opcode == Opcode.FLD:
            xc.write_fp(self.rd, raw_to_float(raw))
        elif self.opcode == Opcode.LB:
            xc.write_int(self.rd, _sext(raw, 8))
        elif self.opcode == Opcode.LW:
            xc.write_int(self.rd, _sext(raw, 32))
        else:
            xc.write_int(self.rd, raw)

    # -- full semantics ----------------------------------------------------
    def execute(self, xc: ExecContext) -> None:
        """Execute completely (atomic-mode semantics)."""
        executor = self._exec
        if executor is None:
            raise ValueError(f"cannot execute unknown opcode {self.opcode}")
        executor(self, xc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<StaticInst {self.mnemonic} rd={self.rd} rs1={self.rs1} "
                f"rs2={self.rs2} imm={self.imm}>")


# ---------------------------------------------------------------------------
# threaded-code executors
#
# One straight-line function per opcode, bound onto each StaticInst at
# decode time (``inst._exec``).  This replaces the old if/elif dispatch
# chains: executing an instruction is a single indirect call, the way
# gem5's generated per-class ``execute()`` methods work.
# ---------------------------------------------------------------------------

def _x_add(i, xc): xc.write_int(i.rd, xc.read_int(i.rs1) + xc.read_int(i.rs2))
def _x_sub(i, xc): xc.write_int(i.rd, xc.read_int(i.rs1) - xc.read_int(i.rs2))


def _x_mul(i, xc):
    xc.write_int(i.rd, to_signed64(xc.read_int(i.rs1))
                 * to_signed64(xc.read_int(i.rs2)))


def _x_div(i, xc):
    sa = to_signed64(xc.read_int(i.rs1))
    sb = to_signed64(xc.read_int(i.rs2))
    xc.write_int(i.rd, -1 if sb == 0 else _truncdiv(sa, sb))


def _x_rem(i, xc):
    sa = to_signed64(xc.read_int(i.rs1))
    sb = to_signed64(xc.read_int(i.rs2))
    xc.write_int(i.rd, sa if sb == 0 else sa - _truncdiv(sa, sb) * sb)


def _x_and(i, xc): xc.write_int(i.rd, xc.read_int(i.rs1) & xc.read_int(i.rs2))
def _x_or(i, xc): xc.write_int(i.rd, xc.read_int(i.rs1) | xc.read_int(i.rs2))
def _x_xor(i, xc): xc.write_int(i.rd, xc.read_int(i.rs1) ^ xc.read_int(i.rs2))


def _x_sll(i, xc):
    xc.write_int(i.rd, xc.read_int(i.rs1) << (xc.read_int(i.rs2) & 63))


def _x_srl(i, xc):
    xc.write_int(i.rd, xc.read_int(i.rs1) >> (xc.read_int(i.rs2) & 63))


def _x_sra(i, xc):
    xc.write_int(i.rd,
                 to_signed64(xc.read_int(i.rs1)) >> (xc.read_int(i.rs2) & 63))


def _x_slt(i, xc):
    xc.write_int(i.rd, int(to_signed64(xc.read_int(i.rs1))
                           < to_signed64(xc.read_int(i.rs2))))


def _x_sltu(i, xc):
    xc.write_int(i.rd, int(xc.read_int(i.rs1) < xc.read_int(i.rs2)))


def _x_addi(i, xc): xc.write_int(i.rd, xc.read_int(i.rs1) + i.imm)


def _x_andi(i, xc):
    xc.write_int(i.rd, xc.read_int(i.rs1) & (i.imm & ((1 << 64) - 1)))


def _x_ori(i, xc):
    xc.write_int(i.rd, xc.read_int(i.rs1) | (i.imm & ((1 << 64) - 1)))


def _x_xori(i, xc):
    xc.write_int(i.rd, xc.read_int(i.rs1) ^ (i.imm & ((1 << 64) - 1)))


def _x_slli(i, xc): xc.write_int(i.rd, xc.read_int(i.rs1) << (i.imm & 63))
def _x_srli(i, xc): xc.write_int(i.rd, xc.read_int(i.rs1) >> (i.imm & 63))


def _x_slti(i, xc):
    xc.write_int(i.rd, int(to_signed64(xc.read_int(i.rs1)) < i.imm))


def _x_lui(i, xc): xc.write_int(i.rd, i.imm << 11)


def _x_load(i, xc):
    i.complete(xc, xc.read_mem(i.ea(xc), i._msize))


def _x_store(i, xc):
    xc.write_mem(i.ea(xc), i._msize, i.store_value(xc))


def _x_beq(i, xc):
    if xc.read_int(i.rs1) == xc.read_int(i.rs2):
        xc.set_npc(xc.pc + i.imm)


def _x_bne(i, xc):
    if xc.read_int(i.rs1) != xc.read_int(i.rs2):
        xc.set_npc(xc.pc + i.imm)


def _x_blt(i, xc):
    if to_signed64(xc.read_int(i.rs1)) < to_signed64(xc.read_int(i.rs2)):
        xc.set_npc(xc.pc + i.imm)


def _x_bge(i, xc):
    if to_signed64(xc.read_int(i.rs1)) >= to_signed64(xc.read_int(i.rs2)):
        xc.set_npc(xc.pc + i.imm)


def _x_bltu(i, xc):
    if xc.read_int(i.rs1) < xc.read_int(i.rs2):
        xc.set_npc(xc.pc + i.imm)


def _x_bgeu(i, xc):
    if xc.read_int(i.rs1) >= xc.read_int(i.rs2):
        xc.set_npc(xc.pc + i.imm)


def _x_jal(i, xc):
    pc = xc.pc
    xc.write_int(i.rd, pc + INST_BYTES)
    xc.set_npc(pc + i.imm)


def _x_jalr(i, xc):
    target = to_unsigned64(xc.read_int(i.rs1) + i.imm) & ~1
    xc.write_int(i.rd, xc.pc + INST_BYTES)
    xc.set_npc(target)


def _x_fadd(i, xc): xc.write_fp(i.rd, xc.read_fp(i.rs1) + xc.read_fp(i.rs2))
def _x_fsub(i, xc): xc.write_fp(i.rd, xc.read_fp(i.rs1) - xc.read_fp(i.rs2))
def _x_fmul(i, xc): xc.write_fp(i.rd, xc.read_fp(i.rs1) * xc.read_fp(i.rs2))


def _x_fdiv(i, xc):
    a, b = xc.read_fp(i.rs1), xc.read_fp(i.rs2)
    xc.write_fp(i.rd, a / b if b != 0.0 else math.inf * (1 if a >= 0 else -1))


def _x_fsqrt(i, xc):
    a = xc.read_fp(i.rs1)
    xc.write_fp(i.rd, math.sqrt(a) if a >= 0 else float("nan"))


def _x_fmin(i, xc):
    xc.write_fp(i.rd, min(xc.read_fp(i.rs1), xc.read_fp(i.rs2)))


def _x_fmax(i, xc):
    xc.write_fp(i.rd, max(xc.read_fp(i.rs1), xc.read_fp(i.rs2)))


def _x_fmadd(i, xc):
    # fd = fs1 * fs2 + fd (destructive accumulate keeps 3 fields)
    xc.write_fp(i.rd, xc.read_fp(i.rs1) * xc.read_fp(i.rs2)
                + xc.read_fp(i.rd))


def _x_fcvt_d_l(i, xc):
    xc.write_fp(i.rd, float(to_signed64(xc.read_int(i.rs1))))


def _x_fcvt_l_d(i, xc):
    value = xc.read_fp(i.rs1)
    if math.isnan(value) or math.isinf(value):
        xc.write_int(i.rd, 0)
    else:
        xc.write_int(i.rd, int(value))


def _x_flt(i, xc):
    xc.write_int(i.rd, int(xc.read_fp(i.rs1) < xc.read_fp(i.rs2)))


def _x_fle(i, xc):
    xc.write_int(i.rd, int(xc.read_fp(i.rs1) <= xc.read_fp(i.rs2)))


def _x_fmv(i, xc): xc.write_fp(i.rd, xc.read_fp(i.rs1))
def _x_ecall(i, xc): xc.syscall()
def _x_m5op(i, xc): xc.pseudo_op(i.imm)


def _x_ll(i, xc):
    ea = i.ea(xc)
    xc.write_int(i.rd, xc.read_mem(ea, 8))
    xc.load_reserved(ea)


def _x_sc(i, xc):
    ok = xc.store_conditional(i.ea(xc), 8,
                              xc.read_int(i.rs2) & ((1 << 64) - 1))
    xc.write_int(i.rd, 0 if ok else 1)


def _x_nop(i, xc):
    pass  # HALT too: the CPU model observes is_halt and exits


_EXECUTORS = {
    Opcode.ADD: _x_add, Opcode.SUB: _x_sub, Opcode.MUL: _x_mul,
    Opcode.DIV: _x_div, Opcode.REM: _x_rem, Opcode.AND: _x_and,
    Opcode.OR: _x_or, Opcode.XOR: _x_xor, Opcode.SLL: _x_sll,
    Opcode.SRL: _x_srl, Opcode.SRA: _x_sra, Opcode.SLT: _x_slt,
    Opcode.SLTU: _x_sltu,
    Opcode.ADDI: _x_addi, Opcode.ANDI: _x_andi, Opcode.ORI: _x_ori,
    Opcode.XORI: _x_xori, Opcode.SLLI: _x_slli, Opcode.SRLI: _x_srli,
    Opcode.SLTI: _x_slti, Opcode.LUI: _x_lui,
    Opcode.LB: _x_load, Opcode.LW: _x_load, Opcode.LD: _x_load,
    Opcode.FLD: _x_load,
    Opcode.SB: _x_store, Opcode.SW: _x_store, Opcode.SD: _x_store,
    Opcode.FSD: _x_store,
    Opcode.BEQ: _x_beq, Opcode.BNE: _x_bne, Opcode.BLT: _x_blt,
    Opcode.BGE: _x_bge, Opcode.BLTU: _x_bltu, Opcode.BGEU: _x_bgeu,
    Opcode.JAL: _x_jal, Opcode.JALR: _x_jalr,
    Opcode.FADD: _x_fadd, Opcode.FSUB: _x_fsub, Opcode.FMUL: _x_fmul,
    Opcode.FDIV: _x_fdiv, Opcode.FSQRT: _x_fsqrt, Opcode.FMIN: _x_fmin,
    Opcode.FMAX: _x_fmax, Opcode.FMADD: _x_fmadd,
    Opcode.FCVT_D_L: _x_fcvt_d_l, Opcode.FCVT_L_D: _x_fcvt_l_d,
    Opcode.FLT: _x_flt, Opcode.FLE: _x_fle, Opcode.FMV: _x_fmv,
    Opcode.ECALL: _x_ecall, Opcode.M5OP: _x_m5op,
    Opcode.NOP: _x_nop, Opcode.HALT: _x_nop,
    Opcode.LL: _x_ll, Opcode.SC: _x_sc,
}


def encode(opcode: int, rd: int = 0, rs1: int = 0, rs2: int = 0,
           imm: int = 0) -> int:
    """Pack fields into a 32-bit SimRISC machine word."""
    word = (opcode & 0x3F) << OP_SHIFT
    word |= (rd & REG_MASK) << RD_SHIFT
    word |= (rs1 & REG_MASK) << RS1_SHIFT
    if opcode in _STORES or opcode in _BRANCHES:
        if not -1024 <= imm < 1024:
            raise ValueError(
                f"{MNEMONICS[opcode]} offset {imm} out of 11-bit range")
        word |= (rs2 & REG_MASK) << RS2_SHIFT
        word |= imm & IMM11_MASK
    elif opcode in (Opcode.LUI, Opcode.JAL):
        if not -(1 << 20) <= imm < (1 << 20):
            raise ValueError(
                f"{MNEMONICS[opcode]} immediate {imm} out of 21-bit range")
        word |= imm & IMM21_MASK
    elif opcode in _I_ALU or opcode in _LOADS or opcode in (Opcode.JALR,
                                                            Opcode.M5OP):
        if not -(1 << 15) <= imm < (1 << 15):
            raise ValueError(
                f"{MNEMONICS[opcode]} immediate {imm} out of 16-bit range")
        word |= imm & IMM16_MASK
    else:
        word |= (rs2 & REG_MASK) << RS2_SHIFT
    return word
