"""SimRISC static instructions: semantics, flags, and encodings.

The design copies gem5's ``StaticInst`` split: a decoded instruction is an
immutable object describing *what* to do; *when* it happens is decided by
the CPU model driving it through an :class:`ExecContext`.  Memory
instructions expose ``ea``/``store_value``/``complete`` so timing CPUs can
split address generation from data delivery, while ``execute`` performs
the whole access for atomic-mode CPUs.

Encoding layout (32-bit word):

====== ======================= =========================================
format fields                  used by
====== ======================= =========================================
R      op rd rs1 rs2           register ALU / FP ops
I      op rd rs1 imm16         immediate ALU, loads, JALR
S      op rs1 rs2 imm11        stores
B      op rs1 rs2 imm11        conditional branches (byte offset)
U      op rd imm21             LUI (imm << 11), JAL (byte offset)
====== ======================= =========================================
"""

from __future__ import annotations

import math
import struct
from typing import Optional, Protocol

from .registers import to_signed64, to_unsigned64

# ---------------------------------------------------------------------------
# encoding constants
# ---------------------------------------------------------------------------
OP_SHIFT = 26
RD_SHIFT = 21
RS1_SHIFT = 16
RS2_SHIFT = 11
REG_MASK = 0x1F
IMM16_MASK = 0xFFFF
IMM11_MASK = 0x7FF
IMM21_MASK = 0x1FFFFF

INST_BYTES = 4


class Opcode:
    """SimRISC opcode space (6 bits)."""

    # R-type integer ALU
    ADD, SUB, MUL, DIV, REM, AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU = range(13)
    # I-type integer ALU
    ADDI, ANDI, ORI, XORI, SLLI, SRLI, SLTI = range(13, 20)
    LUI = 20
    # memory
    LB, LW, LD = 21, 22, 23
    SB, SW, SD = 24, 25, 26
    FLD, FSD = 27, 28
    # control
    BEQ, BNE, BLT, BGE, BLTU, BGEU = range(29, 35)
    JAL, JALR = 35, 36
    # FP
    FADD, FSUB, FMUL, FDIV, FSQRT, FMIN, FMAX, FMADD = range(37, 45)
    FCVT_D_L, FCVT_L_D, FLT, FLE, FMV = range(45, 50)
    # system
    ECALL, NOP, HALT, M5OP = 50, 51, 52, 53

_R_ALU = {Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.REM,
          Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SLL, Opcode.SRL,
          Opcode.SRA, Opcode.SLT, Opcode.SLTU}
_I_ALU = {Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.SLLI,
          Opcode.SRLI, Opcode.SLTI}
_LOADS = {Opcode.LB: 1, Opcode.LW: 4, Opcode.LD: 8, Opcode.FLD: 8}
_STORES = {Opcode.SB: 1, Opcode.SW: 4, Opcode.SD: 8, Opcode.FSD: 8}
_BRANCHES = {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE,
             Opcode.BLTU, Opcode.BGEU}
_FP_R = {Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FSQRT,
         Opcode.FMIN, Opcode.FMAX, Opcode.FMADD, Opcode.FLT, Opcode.FLE,
         Opcode.FMV, Opcode.FCVT_D_L, Opcode.FCVT_L_D}

MNEMONICS = {v: k.lower() for k, v in vars(Opcode).items()
             if not k.startswith("_") and isinstance(v, int)}


def _truncdiv(a: int, b: int) -> int:
    """C-style (truncate-toward-zero) integer division."""
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def _sext(value: int, bits: int) -> int:
    """Sign-extend the low ``bits`` of ``value``."""
    sign = 1 << (bits - 1)
    value &= (1 << bits) - 1
    return value - (1 << bits) if value & sign else value


def float_to_raw(value: float) -> int:
    """Bit-pattern of a double, as an unsigned 64-bit integer."""
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def raw_to_float(raw: int) -> float:
    """Double from its 64-bit bit-pattern."""
    return struct.unpack("<d", struct.pack("<Q", raw & ((1 << 64) - 1)))[0]


class ExecContext(Protocol):
    """What a StaticInst needs from the CPU model executing it."""

    def read_int(self, index: int) -> int: ...
    def write_int(self, index: int, value: int) -> None: ...
    def read_fp(self, index: int) -> float: ...
    def write_fp(self, index: int, value: float) -> None: ...
    @property
    def pc(self) -> int: ...
    def set_npc(self, addr: int) -> None: ...
    def read_mem(self, addr: int, size: int) -> int: ...
    def write_mem(self, addr: int, size: int, value: int) -> None: ...
    def syscall(self) -> None: ...
    def pseudo_op(self, op: int) -> None: ...


class StaticInst:
    """One decoded SimRISC instruction."""

    __slots__ = ("machine_word", "opcode", "rd", "rs1", "rs2", "imm")

    def __init__(self, machine_word: int) -> None:
        self.machine_word = machine_word
        self.opcode = (machine_word >> OP_SHIFT) & 0x3F
        self.rd = (machine_word >> RD_SHIFT) & REG_MASK
        self.rs1 = (machine_word >> RS1_SHIFT) & REG_MASK
        self.rs2 = (machine_word >> RS2_SHIFT) & REG_MASK
        op = self.opcode
        if op in _I_ALU or op in _LOADS or op in (Opcode.JALR, Opcode.M5OP):
            self.imm = _sext(machine_word, 16)
        elif op in _STORES or op in _BRANCHES:
            self.imm = _sext(machine_word, 11)
        elif op in (Opcode.LUI, Opcode.JAL):
            self.imm = _sext(machine_word, 21)
        else:
            self.imm = 0

    # -- classification -------------------------------------------------
    @property
    def mnemonic(self) -> str:
        return MNEMONICS.get(self.opcode, f"op{self.opcode}")

    @property
    def is_load(self) -> bool:
        return self.opcode in _LOADS

    @property
    def is_store(self) -> bool:
        return self.opcode in _STORES

    @property
    def is_mem(self) -> bool:
        return self.is_load or self.is_store

    @property
    def is_branch(self) -> bool:
        """Conditional control flow."""
        return self.opcode in _BRANCHES

    @property
    def is_jump(self) -> bool:
        """Unconditional control flow."""
        return self.opcode in (Opcode.JAL, Opcode.JALR)

    @property
    def is_control(self) -> bool:
        return self.is_branch or self.is_jump

    @property
    def is_indirect(self) -> bool:
        return self.opcode == Opcode.JALR

    @property
    def is_call(self) -> bool:
        return self.is_jump and self.rd == 1  # link register ra

    @property
    def is_return(self) -> bool:
        return self.opcode == Opcode.JALR and self.rd == 0 and self.rs1 == 1

    @property
    def is_fp(self) -> bool:
        return self.opcode in _FP_R or self.opcode in (Opcode.FLD, Opcode.FSD)

    @property
    def is_syscall(self) -> bool:
        return self.opcode == Opcode.ECALL

    @property
    def is_halt(self) -> bool:
        return self.opcode == Opcode.HALT

    @property
    def mem_size(self) -> int:
        if self.is_load:
            return _LOADS[self.opcode]
        if self.is_store:
            return _STORES[self.opcode]
        raise TypeError(f"{self.mnemonic} is not a memory instruction")

    # -- micro-op weight (used by detailed CPU models) -------------------
    @property
    def op_latency(self) -> int:
        """Functional-unit latency in cycles for detailed models."""
        op = self.opcode
        if op in (Opcode.MUL,):
            return 3
        if op in (Opcode.DIV, Opcode.REM):
            return 12
        if op in (Opcode.FADD, Opcode.FSUB, Opcode.FMIN, Opcode.FMAX,
                  Opcode.FMV, Opcode.FCVT_D_L, Opcode.FCVT_L_D,
                  Opcode.FLT, Opcode.FLE):
            return 2
        if op in (Opcode.FMUL, Opcode.FMADD):
            return 4
        if op == Opcode.FDIV:
            return 12
        if op == Opcode.FSQRT:
            return 24
        return 1

    # -- control-flow helpers --------------------------------------------
    def branch_target(self, pc: int) -> Optional[int]:
        """Static target for direct control flow (``None`` for indirect)."""
        if self.is_branch or self.opcode == Opcode.JAL:
            return pc + self.imm
        return None

    # -- memory helpers ---------------------------------------------------
    def ea(self, xc: ExecContext) -> int:
        """Effective address of a memory access."""
        return to_unsigned64(xc.read_int(self.rs1) + self.imm)

    def store_value(self, xc: ExecContext) -> int:
        """Raw integer value a store writes to memory."""
        if self.opcode == Opcode.FSD:
            return float_to_raw(xc.read_fp(self.rs2))
        size = self.mem_size
        return xc.read_int(self.rs2) & ((1 << (size * 8)) - 1)

    def complete(self, xc: ExecContext, raw: int) -> None:
        """Deliver load data to the destination register."""
        if self.opcode == Opcode.FLD:
            xc.write_fp(self.rd, raw_to_float(raw))
        elif self.opcode == Opcode.LB:
            xc.write_int(self.rd, _sext(raw, 8))
        elif self.opcode == Opcode.LW:
            xc.write_int(self.rd, _sext(raw, 32))
        else:
            xc.write_int(self.rd, raw)

    # -- full semantics ----------------------------------------------------
    def execute(self, xc: ExecContext) -> None:
        """Execute completely (atomic-mode semantics)."""
        op = self.opcode
        if op in _R_ALU:
            self._exec_r_alu(xc)
        elif op in _I_ALU:
            self._exec_i_alu(xc)
        elif op == Opcode.LUI:
            xc.write_int(self.rd, self.imm << 11)
        elif self.is_load:
            raw = xc.read_mem(self.ea(xc), self.mem_size)
            self.complete(xc, raw)
        elif self.is_store:
            xc.write_mem(self.ea(xc), self.mem_size, self.store_value(xc))
        elif op in _BRANCHES:
            if self._branch_taken(xc):
                xc.set_npc(xc.pc + self.imm)
        elif op == Opcode.JAL:
            xc.write_int(self.rd, xc.pc + INST_BYTES)
            xc.set_npc(xc.pc + self.imm)
        elif op == Opcode.JALR:
            target = to_unsigned64(xc.read_int(self.rs1) + self.imm) & ~1
            xc.write_int(self.rd, xc.pc + INST_BYTES)
            xc.set_npc(target)
        elif op in _FP_R:
            self._exec_fp(xc)
        elif op == Opcode.ECALL:
            xc.syscall()
        elif op == Opcode.M5OP:
            xc.pseudo_op(self.imm)
        elif op == Opcode.NOP:
            pass
        elif op == Opcode.HALT:
            pass  # the CPU model observes is_halt and exits
        else:
            raise ValueError(f"cannot execute unknown opcode {op}")

    def _branch_taken(self, xc: ExecContext) -> bool:
        a = xc.read_int(self.rs1)
        b = xc.read_int(self.rs2)
        sa, sb = to_signed64(a), to_signed64(b)
        op = self.opcode
        if op == Opcode.BEQ:
            return a == b
        if op == Opcode.BNE:
            return a != b
        if op == Opcode.BLT:
            return sa < sb
        if op == Opcode.BGE:
            return sa >= sb
        if op == Opcode.BLTU:
            return a < b
        return a >= b  # BGEU

    def _exec_r_alu(self, xc: ExecContext) -> None:
        a = xc.read_int(self.rs1)
        b = xc.read_int(self.rs2)
        sa, sb = to_signed64(a), to_signed64(b)
        op = self.opcode
        if op == Opcode.ADD:
            result = a + b
        elif op == Opcode.SUB:
            result = a - b
        elif op == Opcode.MUL:
            result = sa * sb
        elif op == Opcode.DIV:
            result = -1 if sb == 0 else _truncdiv(sa, sb)
        elif op == Opcode.REM:
            result = sa if sb == 0 else sa - _truncdiv(sa, sb) * sb
        elif op == Opcode.AND:
            result = a & b
        elif op == Opcode.OR:
            result = a | b
        elif op == Opcode.XOR:
            result = a ^ b
        elif op == Opcode.SLL:
            result = a << (b & 63)
        elif op == Opcode.SRL:
            result = a >> (b & 63)
        elif op == Opcode.SRA:
            result = sa >> (b & 63)
        elif op == Opcode.SLT:
            result = int(sa < sb)
        else:  # SLTU
            result = int(a < b)
        xc.write_int(self.rd, result)

    def _exec_i_alu(self, xc: ExecContext) -> None:
        a = xc.read_int(self.rs1)
        imm = self.imm
        op = self.opcode
        if op == Opcode.ADDI:
            result = a + imm
        elif op == Opcode.ANDI:
            result = a & (imm & ((1 << 64) - 1))
        elif op == Opcode.ORI:
            result = a | (imm & ((1 << 64) - 1))
        elif op == Opcode.XORI:
            result = a ^ (imm & ((1 << 64) - 1))
        elif op == Opcode.SLLI:
            result = a << (imm & 63)
        elif op == Opcode.SRLI:
            result = a >> (imm & 63)
        else:  # SLTI
            result = int(to_signed64(a) < imm)
        xc.write_int(self.rd, result)

    def _exec_fp(self, xc: ExecContext) -> None:
        op = self.opcode
        if op == Opcode.FCVT_D_L:
            xc.write_fp(self.rd, float(to_signed64(xc.read_int(self.rs1))))
            return
        if op == Opcode.FCVT_L_D:
            value = xc.read_fp(self.rs1)
            if math.isnan(value) or math.isinf(value):
                xc.write_int(self.rd, 0)
            else:
                xc.write_int(self.rd, int(value))
            return
        a = xc.read_fp(self.rs1)
        if op == Opcode.FSQRT:
            xc.write_fp(self.rd, math.sqrt(a) if a >= 0 else float("nan"))
            return
        if op == Opcode.FMV:
            xc.write_fp(self.rd, a)
            return
        b = xc.read_fp(self.rs2)
        if op == Opcode.FADD:
            xc.write_fp(self.rd, a + b)
        elif op == Opcode.FSUB:
            xc.write_fp(self.rd, a - b)
        elif op == Opcode.FMUL:
            xc.write_fp(self.rd, a * b)
        elif op == Opcode.FDIV:
            xc.write_fp(self.rd, a / b if b != 0.0 else math.inf * (1 if a >= 0 else -1))
        elif op == Opcode.FMIN:
            xc.write_fp(self.rd, min(a, b))
        elif op == Opcode.FMAX:
            xc.write_fp(self.rd, max(a, b))
        elif op == Opcode.FMADD:
            # fd = fs1 * fs2 + fd (destructive accumulate keeps 3 fields)
            xc.write_fp(self.rd, a * b + xc.read_fp(self.rd))
        elif op == Opcode.FLT:
            xc.write_int(self.rd, int(a < b))
        elif op == Opcode.FLE:
            xc.write_int(self.rd, int(a <= b))
        else:  # pragma: no cover - exhaustive above
            raise ValueError(f"unknown fp opcode {op}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<StaticInst {self.mnemonic} rd={self.rd} rs1={self.rs1} "
                f"rs2={self.rs2} imm={self.imm}>")


def encode(opcode: int, rd: int = 0, rs1: int = 0, rs2: int = 0,
           imm: int = 0) -> int:
    """Pack fields into a 32-bit SimRISC machine word."""
    word = (opcode & 0x3F) << OP_SHIFT
    word |= (rd & REG_MASK) << RD_SHIFT
    word |= (rs1 & REG_MASK) << RS1_SHIFT
    if opcode in _STORES or opcode in _BRANCHES:
        if not -1024 <= imm < 1024:
            raise ValueError(
                f"{MNEMONICS[opcode]} offset {imm} out of 11-bit range")
        word |= (rs2 & REG_MASK) << RS2_SHIFT
        word |= imm & IMM11_MASK
    elif opcode in (Opcode.LUI, Opcode.JAL):
        if not -(1 << 20) <= imm < (1 << 20):
            raise ValueError(
                f"{MNEMONICS[opcode]} immediate {imm} out of 21-bit range")
        word |= imm & IMM21_MASK
    elif opcode in _I_ALU or opcode in _LOADS or opcode in (Opcode.JALR,
                                                            Opcode.M5OP):
        if not -(1 << 15) <= imm < (1 << 15):
            raise ValueError(
                f"{MNEMONICS[opcode]} immediate {imm} out of 16-bit range")
        word |= imm & IMM16_MASK
    else:
        word |= (rs2 & REG_MASK) << RS2_SHIFT
    return word
