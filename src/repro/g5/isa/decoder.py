"""Instruction decoder with a gem5-style decode cache.

gem5 decodes each fetched machine word into a ``StaticInst`` and caches
the result keyed by the word, so hot code decodes once.  We reproduce
that structure; the decode cache is also what the host-profiling layer
observes as ``Decoder::decode`` work.
"""

from __future__ import annotations

from .instructions import MNEMONICS, OP_SHIFT, StaticInst


class DecodeError(ValueError):
    """Raised on an undecodable machine word."""


class Decoder:
    """Decode 32-bit SimRISC words into (cached) StaticInsts."""

    def __init__(self) -> None:
        self._cache: dict[int, StaticInst] = {}
        self.lookups = 0
        self.misses = 0

    def decode(self, machine_word: int) -> StaticInst:
        """Decode ``machine_word``, reusing the decode cache when possible."""
        self.lookups += 1
        inst = self._cache.get(machine_word)
        if inst is None:
            self.misses += 1
            opcode = (machine_word >> OP_SHIFT) & 0x3F
            if opcode not in MNEMONICS:
                raise DecodeError(
                    f"undecodable machine word {machine_word:#010x} "
                    f"(opcode {opcode})")
            inst = StaticInst(machine_word)
            self._cache[machine_word] = inst
        return inst

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    def reset_stats(self) -> None:
        self.lookups = 0
        self.misses = 0
