"""Instruction decoder with a gem5-style decode cache.

gem5 decodes each fetched machine word into a ``StaticInst`` and caches
the result keyed by the word, so hot code decodes once.  We reproduce
that structure; the decode cache is also what the host-profiling layer
observes as ``Decoder::decode`` work.

Decoded instructions are immutable, so the cache can safely be shared by
every decoder in the process: CPU models construct their decoder with
``shared=True`` and all hit one process-wide word→StaticInst map, the
way gem5 shares its decode cache per ISA.  The default remains a private
cache so standalone decoders keep isolated lookup/miss counters.
"""

from __future__ import annotations

from typing import Optional

from .instructions import MNEMONICS, OP_SHIFT, StaticInst


class DecodeError(ValueError):
    """Raised on an undecodable machine word.

    Carries the faulting PC (when the CPU threads it through) in
    ``pc`` so bad-fetch reports say *where* execution went wrong, not
    just which bit pattern was met.
    """

    def __init__(self, message: str, pc: Optional[int] = None) -> None:
        super().__init__(message)
        self.pc = pc


#: Process-wide decode cache used by all ``shared=True`` decoders.
_SHARED_CACHE: dict[int, StaticInst] = {}


class Decoder:
    """Decode 32-bit SimRISC words into (cached) StaticInsts."""

    __slots__ = ("_cache", "lookups", "misses")

    def __init__(self, shared: bool = False) -> None:
        self._cache: dict[int, StaticInst] = _SHARED_CACHE if shared else {}
        self.lookups = 0
        self.misses = 0

    def decode(self, machine_word: int,
               pc: Optional[int] = None) -> StaticInst:
        """Decode ``machine_word``, reusing the decode cache when possible.

        ``pc`` is the fetch address, used only to annotate
        :class:`DecodeError` on undecodable words.
        """
        self.lookups += 1
        inst = self._cache.get(machine_word)
        if inst is None:
            self.misses += 1
            opcode = (machine_word >> OP_SHIFT) & 0x3F
            if opcode not in MNEMONICS:
                where = f" at pc {pc:#x}" if pc is not None else ""
                raise DecodeError(
                    f"undecodable machine word {machine_word:#010x} "
                    f"(opcode {opcode}){where}", pc=pc)
            inst = StaticInst(machine_word)
            self._cache[machine_word] = inst
        return inst

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    def reset_stats(self) -> None:
        self.lookups = 0
        self.misses = 0
