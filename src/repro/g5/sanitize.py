"""Runtime ownership sanitizer: dynamic validation of the race pass.

``SimConfig(sanitize=True)`` (CLI: ``repro-g5 simulate --sanitize``)
arms a sharded run with ownership-checking hooks:

- the :class:`~repro.g5.sharded.ShardedEngine` publishes which domain's
  window is currently executing (``current_domain``);
- the hot SimObjects of both domains (CPU, L1s, crossbar, L2, memory
  controller) have their ``__setattr__`` replaced by an
  attribute-access tripwire that records a violation whenever state is
  written from a window its owner domain is not running;
- the boundary request ports wrap their synchronous crossing channels
  (the atomic/functional protocol and ``atomic_fast_fn``) to mark the
  access *boundary-mediated* — crossing through the port is the
  sanctioned path, so the tripwire sees the peer's domain as active for
  the duration of the call.  Zero-latency timing sends cross the same
  way (the :class:`~repro.g5.sharded.BoundaryLink` runs the receiver
  synchronously to keep the merged order exact) and publish their
  crossings through the link's ``sanitizer`` hook.

The sanitizer only observes: it never reorders, delays, or suppresses
an access, so a sanitized sharded run stays bit-identical to the plain
single-queue run (``tests/g5/test_sanitize.py`` enforces this for all
four CPU models).  A run with zero recorded violations is the dynamic
proof that the static ``race`` lint verdicts are sound for that
workload; re-introducing a known bypass (binding ``peer.owner`` entry
points directly) makes the tripwires fire, which is the precision
cross-check.

``PhysicalMemory`` is deliberately unmonitored: it is the shared data
plane (see ``repro.analysis.ownership.SHARED_DATA_CLASSES``) — layer
(c) maps it into shared memory rather than assigning it a domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class OwnershipViolation:
    """One cross-domain write observed outside the boundary channel."""

    path: str            # dotted SimObject path of the written object
    attr: str            # attribute written
    owner_domain: str    # domain that owns the object
    active_domain: str   # domain whose window performed the write
    tick: int            # simulated tick of the write

    def to_json(self) -> dict:
        return {"path": self.path, "attr": self.attr,
                "owner_domain": self.owner_domain,
                "active_domain": self.active_domain, "tick": self.tick}


class OwnershipSanitizer:
    """Current-domain bookkeeping plus the violation log."""

    def __init__(self, engine) -> None:
        self.engine = engine
        self.domain_names = [queue.name for queue in engine.domains]
        #: Index of the domain whose window is executing (None outside
        #: the run loop: construction, workload load, stat dump).
        self.current_domain: Optional[int] = None
        self.checked_writes = 0
        self.boundary_crossings = 0
        self.violations: List[OwnershipViolation] = []
        self.monitored: List[str] = []
        self._domains_by_id: dict = {}
        self._stack: List[Optional[int]] = []   # boundary-crossing marks
        self._object_classes: dict = {}
        self._port_classes: dict = {}

    # -- domain bookkeeping ---------------------------------------------
    def claim(self, obj, domain_index: int) -> None:
        self._domains_by_id[id(obj)] = domain_index

    def domain_of(self, obj) -> Optional[int]:
        return self._domains_by_id.get(id(obj))

    def enter(self, target) -> None:
        """Mark a sanctioned boundary crossing into ``target``'s domain."""
        self.boundary_crossings += 1
        self._stack.append(self._domains_by_id.get(id(target)))

    def leave(self) -> None:
        self._stack.pop()

    # -- the tripwire ---------------------------------------------------
    def check(self, obj, attr: str) -> None:
        self.checked_writes += 1
        active = self._stack[-1] if self._stack else self.current_domain
        if active is None:
            return
        owner = self._domains_by_id.get(id(obj))
        if owner is None or owner == active:
            return
        self.violations.append(OwnershipViolation(
            path=obj.path,
            attr=attr,
            owner_domain=self.domain_names[owner],
            active_domain=self.domain_names[active],
            tick=self.engine.now,
        ))

    # -- instrumented classes -------------------------------------------
    def tripwired_class(self, cls):
        """Subclass of ``cls`` whose ``__setattr__`` checks ownership."""
        cached = self._object_classes.get(cls)
        if cached is not None:
            return cached
        sanitizer = self
        original = cls.__setattr__

        def __setattr__(self, name, value):
            sanitizer.check(self, name)
            original(self, name, value)

        sub = type(cls.__name__, (cls,), {"__setattr__": __setattr__})
        sub.__module__ = cls.__module__
        sub.__qualname__ = cls.__qualname__
        self._object_classes[cls] = sub
        return sub

    def sanitized_port_class(self, cls):
        """Subclass of ``cls`` marking synchronous sends as mediated.

        Timing sends cross via the boundary links, which publish their
        own mediation marks (latency-delayed ones execute in the
        receiver's window anyway); the synchronous protocols — atomic,
        functional, and the cached ``atomic_fast_fn`` entry points —
        run peer code inside the sender's window and need the explicit
        mark here.
        """
        cached = self._port_classes.get(cls)
        if cached is not None:
            return cached
        sanitizer = self
        namespace = {"__slots__": ()}

        def _crossing(method_name):
            original = getattr(cls, method_name)

            def wrapper(self, *args):
                peer = self.peer
                sanitizer.enter(peer.owner if peer is not None else None)
                try:
                    return original(self, *args)
                finally:
                    sanitizer.leave()

            wrapper.__name__ = method_name
            wrapper.__qualname__ = f"{cls.__qualname__}.{method_name}"
            return wrapper

        for method in ("send_atomic", "send_atomic_fast",
                       "send_atomic_wb_fast", "send_functional"):
            if hasattr(cls, method):
                namespace[method] = _crossing(method)

        if hasattr(cls, "atomic_fast_fn"):
            def atomic_fast_fn(self):
                peer_owner = self._require_peer().owner
                fn = peer_owner.recv_atomic_fast

                def checked(addr, size, is_write,
                            _fn=fn, _target=peer_owner):
                    sanitizer.enter(_target)
                    try:
                        return _fn(addr, size, is_write)
                    finally:
                        sanitizer.leave()

                return checked

            namespace["atomic_fast_fn"] = atomic_fast_fn

        sub = type(cls.__name__, (cls,), namespace)
        sub.__module__ = cls.__module__
        sub.__qualname__ = cls.__qualname__
        self._port_classes[cls] = sub
        return sub

    # -- reporting ------------------------------------------------------
    def describe(self) -> dict:
        """JSON-safe sanitizer report (carried on ``SimResult``)."""
        return {
            "domains": list(self.domain_names),
            "monitored": list(self.monitored),
            "checked_writes": self.checked_writes,
            "boundary_crossings": self.boundary_crossings,
            "violations": [v.to_json() for v in self.violations],
        }


def install_sanitizer(system) -> OwnershipSanitizer:
    """Arm a sharded system with ownership tripwires.

    Called by ``System.__init__`` when ``config.sanitize`` is set,
    after :func:`~repro.g5.sharded.shard_system` has partitioned the
    graph (every SimObject's ``eventq`` names its owning domain).
    """
    from .sharded import ShardedEngine, boundary_pairs

    engine = system.sharded
    if not isinstance(engine, ShardedEngine):
        raise ValueError(
            "the ownership sanitizer requires a sharded system "
            "(SimConfig(domains >= 2))")
    sanitizer = OwnershipSanitizer(engine)
    queue_index = {id(queue): index
                   for index, queue in enumerate(engine.domains)}
    for obj in [system, *system.descendants()]:
        index = queue_index.get(id(obj.eventq))
        if index is not None:
            sanitizer.claim(obj, index)
    # Attribute tripwires on the hot objects of every domain (per-core
    # CPU + L1 triples, then the shared hierarchy; at one core this is
    # the legacy cpu/icache/dcache/l2bus/l2/mem_ctrl order).
    # PhysicalMemory stays out: shared data plane by design.
    hot: list = []
    for cpu, icache, dcache in zip(system.cpus, system.icaches,
                                   system.dcaches):
        hot.extend((cpu, icache, dcache))
    hot.extend((system.l2bus, system.l2cache, system.memctrl))
    for obj in hot:
        obj.__class__ = sanitizer.tripwired_class(type(obj))
        sanitizer.monitored.append(obj.path)
    # Mediation marks on the boundary request ports (synchronous
    # protocols run peer code inside the sender's window).
    for req_port, _resp_port in boundary_pairs(system):
        req_port.__class__ = sanitizer.sanitized_port_class(type(req_port))
    # Zero-latency timing sends also run peer code synchronously — the
    # links publish those crossings themselves.
    for link in engine.links:
        link.sanitizer = sanitizer
    # Coherence probes walk peer L1 tag stores synchronously; the
    # CoherenceDomain publishes each probe as a mediated crossing.
    if getattr(system, "coherence", None) is not None:
        system.coherence.sanitizer = sanitizer
    engine.sanitizer = sanitizer
    return sanitizer
