"""The FS-mode kernel interface.

In full-system mode there is no syscall emulation: the guest program *is*
the operating system plus its init process.  ``MiniKernel`` plays the
role of machine firmware: it fields ``ecall`` traps from the guest
(console output, shutdown) the way a real platform's SBI/PSCI firmware
would, and tracks boot progress markers the Boot-Exit workload emits.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .devices import SHUTDOWN_MAGIC, PowerController, Uart

if TYPE_CHECKING:  # pragma: no cover
    from ..cpus.base import BaseCPU

#: Firmware call numbers (a7 register).
FW_PUTCHAR = 0
FW_SHUTDOWN = 1
FW_MARK_PHASE = 2


class KernelPanic(RuntimeError):
    """Raised when the guest traps with an unknown firmware call."""


class MiniKernel:
    """Firmware-level trap handler + boot-progress bookkeeping."""

    def __init__(self, uart: Uart, power: PowerController) -> None:
        self.uart = uart
        self.power = power
        self.boot_phases: list[int] = []

    def handle_trap(self, cpu: "BaseCPU") -> None:
        call = cpu.read_int(17)  # a7
        arg = cpu.read_int(10)   # a0
        if call == FW_PUTCHAR:
            self.uart.reg_write(0, 1, arg)
        elif call == FW_SHUTDOWN:
            self.power.reg_write(0, 4, SHUTDOWN_MAGIC)
        elif call == FW_MARK_PHASE:
            self.boot_phases.append(arg)
        else:
            raise KernelPanic(f"unknown firmware call {call}")

    @property
    def console_text(self) -> str:
        return self.uart.console_text

    @property
    def booted(self) -> bool:
        """True once the guest reported its final boot phase."""
        return bool(self.boot_phases) and self.boot_phases[-1] >= 100
