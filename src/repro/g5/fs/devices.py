"""Platform devices for full-system mode.

FS mode models the whole machine, so the guest talks to hardware through
memory-mapped I/O.  We provide the minimal ARM-VExpress-like platform the
boot workload needs: a UART for the console, an RTC, and a power
controller whose shutdown register ends the simulation (gem5's
``m5 exit`` analogue).
"""

from __future__ import annotations

from ...events import SimObject

UART_BASE = 0x0900_0000
RTC_BASE = 0x0901_0000
POWER_BASE = 0x0902_0000
DEVICE_SIZE = 0x1000

#: Register offsets.
UART_DATA = 0x0
UART_STATUS = 0x4
RTC_TICKS_LO = 0x0
RTC_TICKS_HI = 0x4
POWER_SHUTDOWN = 0x0
SHUTDOWN_MAGIC = 0x5555


class Device(SimObject):
    """Base class for MMIO devices."""

    def __init__(self, name: str, parent, base: int,
                 size: int = DEVICE_SIZE) -> None:
        super().__init__(name, parent)
        self.base = base
        self.size = size
        self._fn_read = self.host_fn(f"{type(self).__name__}::read")
        self._fn_write = self.host_fn(f"{type(self).__name__}::write")
        self._regs_host = self.host_alloc(size_bytes_for(size), "deviceRegs")

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size

    def read(self, addr: int, size: int) -> int:
        self.host_record(self._fn_read, self._regs_host)
        return self.reg_read(addr - self.base, size)

    def write(self, addr: int, size: int, value: int) -> None:
        self.host_record(self._fn_write, self._regs_host)
        self.reg_write(addr - self.base, size, value)

    def reg_read(self, offset: int, size: int) -> int:
        raise NotImplementedError

    def reg_write(self, offset: int, size: int, value: int) -> None:
        raise NotImplementedError


def size_bytes_for(mmio_size: int) -> int:
    """Host bytes modelling a device's register file (bounded)."""
    return min(256, max(16, mmio_size // 64))


class Uart(Device):
    """Transmit-only PL011-flavoured UART."""

    def __init__(self, name: str, parent, base: int = UART_BASE) -> None:
        super().__init__(name, parent, base)
        self.console = bytearray()

    def reg_read(self, offset: int, size: int) -> int:
        if offset == UART_STATUS:
            return 1  # always ready to transmit
        return 0

    def reg_write(self, offset: int, size: int, value: int) -> None:
        if offset == UART_DATA:
            self.console.append(value & 0xFF)

    @property
    def console_text(self) -> str:
        return self.console.decode("utf-8", errors="replace")


class Rtc(Device):
    """Real-time clock exposing the current simulated tick."""

    def __init__(self, name: str, parent, base: int = RTC_BASE) -> None:
        super().__init__(name, parent, base)

    def reg_read(self, offset: int, size: int) -> int:
        now = self.now
        if offset == RTC_TICKS_LO:
            return now & 0xFFFF_FFFF
        if offset == RTC_TICKS_HI:
            return (now >> 32) & 0xFFFF_FFFF
        return 0

    def reg_write(self, offset: int, size: int, value: int) -> None:
        pass  # read-only device


class PowerController(Device):
    """Shutdown register: writing the magic value exits the simulation."""

    def __init__(self, name: str, parent, base: int = POWER_BASE) -> None:
        super().__init__(name, parent, base)
        self.shutdown_requested = False

    def reg_read(self, offset: int, size: int) -> int:
        return int(self.shutdown_requested)

    def reg_write(self, offset: int, size: int, value: int) -> None:
        if offset == POWER_SHUTDOWN and value == SHUTDOWN_MAGIC:
            self.shutdown_requested = True
            self._eventq().exit_simulation("guest requested shutdown")
