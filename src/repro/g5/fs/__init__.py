"""FS (full-system) mode: platform devices and the firmware kernel shim."""

from .devices import (
    POWER_BASE,
    RTC_BASE,
    SHUTDOWN_MAGIC,
    UART_BASE,
    Device,
    PowerController,
    Rtc,
    Uart,
)
from .kernel import FW_MARK_PHASE, FW_PUTCHAR, FW_SHUTDOWN, KernelPanic, MiniKernel

__all__ = [
    "Device",
    "FW_MARK_PHASE",
    "FW_PUTCHAR",
    "FW_SHUTDOWN",
    "KernelPanic",
    "MiniKernel",
    "POWER_BASE",
    "PowerController",
    "RTC_BASE",
    "Rtc",
    "SHUTDOWN_MAGIC",
    "UART_BASE",
    "Uart",
]
