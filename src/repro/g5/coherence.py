"""Snooping MSI coherence over the classic-cache layer, plus LL/SC state.

Multi-core systems give every core a private L1 pair behind the shared
xbar.  Data correctness is functional (every store lands in
:class:`~repro.g5.mem.dram.PhysicalMemory` immediately), so coherence
here is a *timing and traffic* model, the same split the classic caches
already use: the three MSI states map onto the existing tag-store bits
(I = ``not valid``, S = ``valid and not dirty``, M = ``valid and
dirty``), and bus snoops are synchronous zero-latency probes of the peer
L1 data caches — invalidations on writes, M->S demotions (with a counted
writeback) on reads.  Instruction caches are left incoherent, like
classic gem5; self-modifying code is handled functionally by the decoded
-page invalidation in :class:`~repro.g5.cpus.base.BaseCPU`.

The LL/SC reservation table lives here too: one reservation granule per
core, cleared by any overlapping remote write (the functional analogue
of losing the line to a snoop invalidation).

A single-member domain never probes anything, so single-core systems
routed through the coherent path are bit-identical to the legacy
configuration — the differential suite pins this.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .mem.cache import Cache

#: LL/SC reservation granule in bytes (one cache line).
RESERVATION_GRANULE = 64


class ReservationSet:
    """Per-core LL/SC reservations over shared physical memory.

    Shared data plane (like ``PhysicalMemory``): every core reads and
    writes it at guest-visible serialization points, so it is not owned
    by any single event-queue domain.  ``count`` is a cheap guard the
    store path checks before paying the overlap scan.
    """

    __slots__ = ("_granules", "count")

    def __init__(self) -> None:
        self._granules: Dict[int, int] = {}
        self.count = 0

    def place(self, cpu_id: int, addr: int) -> None:
        """Reserve the granule holding ``addr`` for ``cpu_id``."""
        if cpu_id not in self._granules:
            self.count += 1
        self._granules[cpu_id] = addr & ~(RESERVATION_GRANULE - 1)

    def consume(self, cpu_id: int, addr: int) -> bool:
        """True (and cleared) if ``cpu_id`` still holds ``addr``'s granule."""
        granule = self._granules.get(cpu_id)
        if granule is None:
            return False
        del self._granules[cpu_id]
        self.count -= 1
        return granule == addr & ~(RESERVATION_GRANULE - 1)

    def clear_range(self, addr: int, size: int) -> None:
        """Drop every reservation whose granule overlaps the write."""
        low = addr & ~(RESERVATION_GRANULE - 1)
        high = (addr + size - 1) & ~(RESERVATION_GRANULE - 1)
        stale = [cpu_id for cpu_id, granule in self._granules.items()
                 if low <= granule <= high]
        for cpu_id in stale:
            del self._granules[cpu_id]
        self.count -= len(stale)


class CoherenceDomain:
    """The snooping bus: mediates every L1-to-L1 coherence probe.

    Like a port, this is a boundary object: a member cache's fills and
    write upgrades call :meth:`snoop_read`/:meth:`snoop_write`, and the
    domain walks the *peer* caches' tag stores on their behalf.  When a
    runtime ownership sanitizer is armed the domain publishes each probe
    through ``sanitizer.enter``/``leave`` so cross-core tag writes are
    recorded as mediated, not racy.
    """

    __slots__ = ("caches", "sanitizer")

    def __init__(self) -> None:
        self.caches: List["Cache"] = []
        self.sanitizer = None

    def attach(self, cache: "Cache") -> None:
        cache.coherence = self
        self.caches.append(cache)

    def snoop_write(self, requester: "Cache", line_addr: int) -> None:
        """Requester gains M: invalidate every peer copy."""
        self._probe(requester, line_addr, invalidate=True)

    def snoop_read(self, requester: "Cache", line_addr: int) -> None:
        """Requester gains S: demote peer M copies to S."""
        self._probe(requester, line_addr, invalidate=False)

    def _probe(self, requester: "Cache", line_addr: int,
               invalidate: bool) -> None:
        sanitizer = self.sanitizer
        for cache in self.caches:
            if cache is requester:
                continue
            if sanitizer is not None:
                sanitizer.enter(cache)
                try:
                    cache.handle_snoop(line_addr, invalidate)
                finally:
                    sanitizer.leave()
            else:
                cache.handle_snoop(line_addr, invalidate)
