"""AtomicSimpleCPU: CPI=1, atomic memory accesses.

Mirrors gem5's AtomicSimpleCPU: one tick event per instruction, memory
accesses complete immediately through the atomic protocol (optionally
adding their latency to simulated time), no pipeline modelling.  Used for
fast-forwarding and cache warm-up, and — per the paper — the cheapest
CPU model for the host to simulate.

When the owning system is built with ``fast_path=True`` the CPU runs a
zero-heap inner loop instead of one event per tick: it executes
straight-line instruction sequences inside a single event firing, using
:meth:`EventQueue.advance_if_idle` to move time forward, the packet-free
``recv_atomic_fast`` chain for ifetch/data latency accounting, and the
per-page decoded-instruction cache for fetch+decode.  The sequence of
stat updates and host-trace records is *identical* to the slow path —
the differential suite and golden stats run both paths against each
other bit-for-bit.
"""

from __future__ import annotations

from ...events import CPU_TICK_PRI, Event
from .base import BaseCPU


class _TickEvent(Event):
    __slots__ = ("cpu",)

    def __init__(self, cpu: "AtomicSimpleCPU") -> None:
        super().__init__(name=f"{cpu.name}.tick", priority=CPU_TICK_PRI)
        self.cpu = cpu

    def process(self) -> None:
        self.cpu.tick()


class AtomicSimpleCPU(BaseCPU):
    """Single-cycle CPU with atomic memory."""

    cpu_type = "atomic"

    def __init__(self, name: str, parent, cpu_id: int = 0,
                 width: int = 1, simulate_mem_latency: bool = False) -> None:
        super().__init__(name, parent, cpu_id)
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        self.width = width
        self.simulate_mem_latency = simulate_mem_latency
        self._tick_event = _TickEvent(self)
        self._fn_tick = self.host_fn("AtomicSimpleCPU::tick")
        # Bound at activate() when fast_path is on.
        self._icache_fast = None
        self._dcache_fast = None

    def activate(self) -> None:
        """Start executing at the bound workload's entry point."""
        if self.fast_path:
            # Bind the packet-free atomic entry points of both L1s once,
            # through the ports: the port is the sanctioned crossing
            # point into the memory domain (see RequestPort.atomic_fast_fn).
            self._icache_fast = self.icache_port.atomic_fast_fn()
            self._dcache_fast = self.dcache_port.atomic_fast_fn()
        self.schedule_in(self._tick_event, 0)

    def thread_start_event(self, when: int):
        """Revive a parked core for a spawned thread (see pseudo.py)."""
        if self.fast_path:
            self._icache_fast = self.icache_port.atomic_fast_fn()
            self._dcache_fast = self.dcache_port.atomic_fast_fn()
        return self._tick_event

    def tick(self) -> None:
        """Fetch/decode/execute up to ``width`` instructions, reschedule."""
        if self.fast_path:
            self._tick_fast()
            return
        self.host_record(self._fn_tick)
        extra_latency = 0
        for _ in range(self.width):
            if self._halted:
                return
            extra_latency += self._step()
        self.stat_cycles.inc()
        if not self._halted:
            delay = self.cycles(1)
            if self.simulate_mem_latency:
                delay += extra_latency
            self.schedule_in(self._tick_event, delay)

    def _step(self) -> int:
        """Run one instruction; returns atomic memory latency in ticks."""
        pc = self.regs.pc
        ifetch = self.make_ifetch(pc)
        self.host_record(self._fn_fetch)
        latency = self.icache_port.send_atomic(ifetch)
        word = self.fetch_word(pc)
        inst = self.decode_inst(word, pc)
        if inst.is_mem:
            addr = inst.ea(self)
            if self._device_at(addr) is None:
                self.host_record(self._fn_mem, 0)
                data_pkt = self.make_data_req(inst, addr)
                latency += self.dcache_port.send_atomic(data_pkt)
        next_pc = self.execute_inst(inst)
        self.regs.pc = next_pc
        self.stat_committed.inc()
        return latency if self.simulate_mem_latency else 0

    # ------------------------------------------------------------------
    # fast path
    # ------------------------------------------------------------------
    def _tick_fast(self) -> None:
        """Straight-line tick loop inside a single event firing.

        Per logical tick this performs exactly the work (and exactly the
        stat/record sequence) of :meth:`tick`, but instead of
        rescheduling the tick event it asks the queue to just advance
        time while no other event would intervene.  It falls back to a
        real schedule the moment something else is pending.
        """
        rec = self._rec_live
        eventq = self.eventq
        advance = eventq.advance_if_idle
        regs = self.regs
        period = self.cycles(1)
        width = self.width
        sim_lat = self.simulate_mem_latency
        icache_fast = self._icache_fast
        dcache_fast = self._dcache_fast
        stat_cycles = self.stat_cycles
        stat_committed = self.stat_committed
        stat_mem_refs = self.stat_mem_refs
        stat_branches = self.stat_branches
        devices = self._devices
        while True:
            if rec:
                self.recorder.record(self._fn_tick, 0)
            extra_latency = 0
            for _ in range(width):
                if self._halted:
                    return
                # -- one instruction (mirrors _step) -------------------
                pc = regs.pc
                if rec:
                    self.recorder.record(self._fn_fetch, 0)
                latency = icache_fast(pc & ~63, 64, False)
                inst = self.fetch_decode(pc)
                if inst.is_mem:
                    addr = inst.ea(self)
                    if not devices or self.system.device_at(addr) is None:
                        if rec:
                            self.recorder.record(self._fn_mem, 0)
                        latency += dcache_fast(addr, inst._msize,
                                               inst.is_store)
                if rec or inst.is_control or inst.is_mem or inst.is_halt \
                        or inst.is_syscall:
                    next_pc = self.execute_inst(inst)
                else:
                    # Pure-ALU straight-line case, fully inlined.
                    self._npc = None
                    inst._exec(inst, self)
                    npc = self._npc
                    next_pc = pc + 4 if npc is None else npc
                    self._npc = None
                regs.pc = next_pc
                stat_committed.inc()
                if sim_lat:
                    extra_latency += latency
            stat_cycles.inc()
            if self._halted:
                return
            delay = period + extra_latency if sim_lat else period
            if not advance(eventq.now + delay, CPU_TICK_PRI):
                self.schedule_in(self._tick_event, delay)
                return
