"""AtomicSimpleCPU: CPI=1, atomic memory accesses.

Mirrors gem5's AtomicSimpleCPU: one tick event per instruction, memory
accesses complete immediately through the atomic protocol (optionally
adding their latency to simulated time), no pipeline modelling.  Used for
fast-forwarding and cache warm-up, and — per the paper — the cheapest
CPU model for the host to simulate.
"""

from __future__ import annotations

from ...events import CPU_TICK_PRI, Event
from .base import BaseCPU


class _TickEvent(Event):
    __slots__ = ("cpu",)

    def __init__(self, cpu: "AtomicSimpleCPU") -> None:
        super().__init__(name=f"{cpu.name}.tick", priority=CPU_TICK_PRI)
        self.cpu = cpu

    def process(self) -> None:
        self.cpu.tick()


class AtomicSimpleCPU(BaseCPU):
    """Single-cycle CPU with atomic memory."""

    cpu_type = "atomic"

    def __init__(self, name: str, parent, cpu_id: int = 0,
                 width: int = 1, simulate_mem_latency: bool = False) -> None:
        super().__init__(name, parent, cpu_id)
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        self.width = width
        self.simulate_mem_latency = simulate_mem_latency
        self._tick_event = _TickEvent(self)
        self._fn_tick = self.host_fn("AtomicSimpleCPU::tick")

    def activate(self) -> None:
        """Start executing at the bound workload's entry point."""
        self.schedule_in(self._tick_event, 0)

    def tick(self) -> None:
        """Fetch/decode/execute up to ``width`` instructions, reschedule."""
        self.host_record(self._fn_tick)
        extra_latency = 0
        for _ in range(self.width):
            if self._halted:
                return
            extra_latency += self._step()
        self.stat_cycles.inc()
        if not self._halted:
            delay = self.cycles(1)
            if self.simulate_mem_latency:
                delay += extra_latency
            self.schedule_in(self._tick_event, delay)

    def _step(self) -> int:
        """Run one instruction; returns atomic memory latency in ticks."""
        pc = self.regs.pc
        ifetch = self.make_ifetch(pc)
        self.host_record(self._fn_fetch)
        latency = self.icache_port.send_atomic(ifetch)
        word = self.fetch_word(pc)
        inst = self.decode_inst(word)
        if inst.is_mem:
            addr = inst.ea(self)
            if self._device_at(addr) is None:
                self.host_record(self._fn_mem, 0)
                data_pkt = self.make_data_req(inst, addr)
                latency += self.dcache_port.send_atomic(data_pkt)
        next_pc = self.execute_inst(inst)
        self.regs.pc = next_pc
        self.stat_committed.inc()
        return latency if self.simulate_mem_latency else 0
