"""Branch prediction for the detailed g5 CPU models.

A tournament predictor in the style of the Alpha 21264 (which gem5's O3
model is loosely based on): a local 2-bit-counter predictor, a global
(gshare) predictor, a chooser, plus a BTB and a return-address stack.
"""

from __future__ import annotations

from ..isa import INST_BYTES, StaticInst


class _CounterTable:
    """A table of saturating 2-bit counters."""

    __slots__ = ("mask", "counters")

    def __init__(self, entries: int) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"entries must be a positive power of two: {entries}")
        self.mask = entries - 1
        self.counters = [1] * entries  # weakly not-taken

    def predict(self, index: int) -> bool:
        return self.counters[index & self.mask] >= 2

    def update(self, index: int, taken: bool) -> None:
        slot = index & self.mask
        count = self.counters[slot]
        if taken:
            self.counters[slot] = min(3, count + 1)
        else:
            self.counters[slot] = max(0, count - 1)


class TournamentBP:
    """Local/global tournament predictor with BTB and RAS."""

    def __init__(self, local_entries: int = 2048, global_entries: int = 8192,
                 btb_entries: int = 4096, ras_entries: int = 16) -> None:
        self._local = _CounterTable(local_entries)
        self._global = _CounterTable(global_entries)
        self._chooser = _CounterTable(global_entries)
        self._history = 0
        self._history_mask = global_entries - 1
        self._btb: dict[int, int] = {}
        self._btb_entries = btb_entries
        self._ras: list[int] = []
        self._ras_entries = ras_entries
        self.lookups = 0
        self.mispredicts = 0
        self.btb_misses = 0

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def predict(self, pc: int, inst: StaticInst) -> tuple[bool, int]:
        """Predict ``inst`` at ``pc``; returns ``(taken, target)``."""
        self.lookups += 1
        fallthrough = pc + INST_BYTES
        if inst.is_return and self._ras:
            return True, self._ras[-1]
        if inst.is_jump:
            target = self._btb.get(pc)
            if target is None:
                self.btb_misses += 1
                return True, fallthrough  # unknown target: fetch stalls
            return True, target
        # Conditional branch: tournament choice.
        ghist_index = (pc >> 2) ^ self._history
        use_global = self._chooser.predict(ghist_index)
        if use_global:
            taken = self._global.predict(ghist_index)
        else:
            taken = self._local.predict(pc >> 2)
        if not taken:
            return False, fallthrough
        target = self._btb.get(pc)
        if target is None:
            self.btb_misses += 1
            return True, fallthrough
        return True, target

    def on_fetch(self, pc: int, inst: StaticInst) -> None:
        """Maintain the RAS speculatively at fetch."""
        if inst.is_call:
            if len(self._ras) >= self._ras_entries:
                self._ras.pop(0)
            self._ras.append(pc + INST_BYTES)
        elif inst.is_return and self._ras:
            self._ras.pop()

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def update(self, pc: int, inst: StaticInst, taken: bool, target: int,
               mispredicted: bool) -> None:
        """Train on the resolved outcome."""
        if mispredicted:
            self.mispredicts += 1
        if inst.is_branch:
            ghist_index = (pc >> 2) ^ self._history
            local_correct = self._local.predict(pc >> 2) == taken
            global_correct = self._global.predict(ghist_index) == taken
            if local_correct != global_correct:
                self._chooser.update(ghist_index, global_correct)
            self._local.update(pc >> 2, taken)
            self._global.update(ghist_index, taken)
            self._history = ((self._history << 1) | int(taken)) & self._history_mask
        if taken:
            if len(self._btb) >= self._btb_entries:
                self._btb.pop(next(iter(self._btb)))
            self._btb[pc] = target

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / max(1, self.lookups)
