"""TimingSimpleCPU: CPI=1 plus real memory timing.

Mirrors gem5's TimingSimpleCPU: each instruction fetch is a timing
request through the icache; memory instructions issue a timing request
through the dcache and stall the CPU until the response returns.  The
CPU is otherwise unpipelined.
"""

from __future__ import annotations

from typing import Optional

from ...events import CallbackEvent
from ..isa import StaticInst
from ..mem.packet import Packet
from .base import BaseCPU, CPUError


class TimingSimpleCPU(BaseCPU):
    """Unpipelined CPU with event-driven memory accesses."""

    cpu_type = "timing"

    def __init__(self, name: str, parent, cpu_id: int = 0) -> None:
        super().__init__(name, parent, cpu_id)
        self._waiting_inst: Optional[StaticInst] = None
        self._fetch_outstanding = False
        self._last_advance_tick = 0
        # One persistent, reusable fetch event: only a single fetch is
        # ever in flight, so there is no need to allocate a CallbackEvent
        # (plus closure) per instruction.
        self._fetch_event = CallbackEvent(
            self._send_fetch, name=f"{name}.fetch")
        self._fn_icache_resp = self.host_fn("TimingSimpleCPU::IcachePort::recvTimingResp")
        self._fn_dcache_resp = self.host_fn("TimingSimpleCPU::DcachePort::recvTimingResp")
        self._fn_complete = self.host_fn("TimingSimpleCPU::completeDataAccess")

    def activate(self) -> None:
        """Start execution by issuing the first instruction fetch."""
        self.schedule_in(self._fetch_event, 0)

    def thread_start_event(self, when: int):
        """Revive a parked core for a spawned thread (see pseudo.py).

        The cycle accountant must not charge the parked gap to the new
        thread, so the advance clock restarts at the start tick.
        """
        self._last_advance_tick = when
        return self._fetch_event

    # ------------------------------------------------------------------
    # fetch path
    # ------------------------------------------------------------------
    def _send_fetch(self) -> None:
        if self._halted:
            return
        self._account_cycles()
        self.host_record(self._fn_fetch)
        pkt = self.make_ifetch(self.regs.pc)
        pkt.push_state(self)
        self._fetch_outstanding = True
        self.icache_port.send_timing_req(pkt)

    def recv_timing_resp(self, pkt: Packet) -> None:
        if pkt.is_instruction:
            self._recv_ifetch_resp(pkt)
        else:
            self._recv_data_resp(pkt)

    def _recv_ifetch_resp(self, pkt: Packet) -> None:
        owner = pkt.pop_state()
        assert owner is self
        self.host_record(self._fn_icache_resp)
        self._fetch_outstanding = False
        if self._halted:
            return
        word = self.fetch_word(self.regs.pc)
        inst = self.decode_inst(word, self.regs.pc)
        if inst.is_mem:
            addr = inst.ea(self)
            if self._device_at(addr) is None:
                self._waiting_inst = inst
                self.host_record(self._fn_mem)
                data_pkt = self.make_data_req(inst, addr)
                data_pkt.push_state(self)
                self.dcache_port.send_timing_req(data_pkt)
                return
        self._finish_inst(inst)

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def _recv_data_resp(self, pkt: Packet) -> None:
        owner = pkt.pop_state()
        assert owner is self
        self.host_record(self._fn_dcache_resp)
        inst = self._waiting_inst
        if inst is None:
            raise CPUError(f"{self.path}: data response with no waiting inst")
        self._waiting_inst = None
        self.host_record(self._fn_complete)
        self._finish_inst(inst)

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def _finish_inst(self, inst: StaticInst) -> None:
        self._account_cycles()
        next_pc = self.execute_inst(inst)
        self.regs.pc = next_pc
        self.stat_committed.inc()
        if not self._halted:
            self.schedule_in(self._fetch_event, self.cycles(1))

    def _account_cycles(self) -> None:
        """Charge wall-clock cycles between fetch issues (stall-inclusive)."""
        now = self.now
        elapsed = self.clock.ticks_to_cycles(now - self._last_advance_tick)
        self.stat_cycles.inc(elapsed)
        self._last_advance_tick = now
