"""Dynamic instructions and the functional instruction stream.

The detailed CPU models (Minor, O3) are *timing-directed*: a functional
stepper executes the guest program in order, emitting :class:`DynInst`
records that carry everything the timing pipeline needs (effective
addresses, branch outcomes, register dependencies).  The pipeline then
charges time: cache misses, structural hazards, dependency stalls, and
branch-misprediction bubbles.  Because the functional path is always the
correct path, mispredictions are modelled as fetch bubbles rather than
wrong-path execution — a standard, deterministic approximation.
"""

from __future__ import annotations

import itertools
from typing import Optional, TYPE_CHECKING

from ..isa import INST_BYTES, Opcode, StaticInst

if TYPE_CHECKING:  # pragma: no cover
    from .base import BaseCPU


class DynInst:
    """One dynamic instruction instance flowing through a pipeline."""

    __slots__ = ("seq", "pc", "inst", "next_pc", "mem_addr", "taken",
                 "src_regs", "dst_reg", "complete_tick", "issued",
                 "mispredicted", "fetch_stalled", "deps")

    def __init__(self, seq: int, pc: int, inst: StaticInst, next_pc: int,
                 mem_addr: Optional[int], taken: bool) -> None:
        self.seq = seq
        self.pc = pc
        self.inst = inst
        self.next_pc = next_pc
        self.mem_addr = mem_addr
        self.taken = taken
        self.src_regs = self._sources(inst)
        self.dst_reg = self._destination(inst)
        self.complete_tick: Optional[int] = None  # None = not complete
        self.issued = False
        self.mispredicted = False
        self.fetch_stalled = False
        self.deps: tuple["DynInst", ...] = ()  # producers captured at rename

    @staticmethod
    def _sources(inst: StaticInst) -> tuple[tuple[bool, int], ...]:
        """(is_fp, index) source registers, excluding x0."""
        sources: list[tuple[bool, int]] = []
        fp = inst.is_fp
        op = inst.opcode
        if op in (Opcode.LUI, Opcode.JAL, Opcode.NOP, Opcode.HALT,
                  Opcode.ECALL, Opcode.M5OP):
            return ()
        if fp and not inst.is_mem:
            sources.append((True, inst.rs1))
            if op not in (Opcode.FSQRT, Opcode.FMV, Opcode.FCVT_D_L,
                          Opcode.FCVT_L_D):
                sources.append((True, inst.rs2))
            if op == Opcode.FMADD:
                sources.append((True, inst.rd))
            if op == Opcode.FCVT_D_L:
                sources = [(False, inst.rs1)]
        else:
            if inst.rs1:
                sources.append((False, inst.rs1))
            if inst.is_store or inst.is_branch or (
                    not inst.is_mem and not inst.is_jump and inst.rs2):
                if inst.opcode == Opcode.FSD:
                    sources.append((True, inst.rs2))
                elif inst.rs2:
                    sources.append((False, inst.rs2))
        return tuple(sources)

    @staticmethod
    def _destination(inst: StaticInst) -> Optional[tuple[bool, int]]:
        if inst.is_store or inst.is_branch or inst.is_halt or inst.is_syscall:
            return None
        if inst.opcode in (Opcode.NOP, Opcode.M5OP):
            return None
        if inst.opcode == Opcode.FLD or (inst.is_fp and inst.opcode not in
                                         (Opcode.FLT, Opcode.FLE,
                                          Opcode.FCVT_L_D)):
            return (True, inst.rd)
        if inst.rd == 0:
            return None
        return (False, inst.rd)

    @property
    def done(self) -> bool:
        return self.complete_tick is not None

    def is_ready(self, now: int) -> bool:
        return self.complete_tick is not None and self.complete_tick <= now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DynInst #{self.seq} {self.inst.mnemonic} pc={self.pc:#x}>"


class InstStream:
    """Functional in-order stepper producing DynInsts on demand."""

    def __init__(self, cpu: "BaseCPU") -> None:
        self.cpu = cpu
        self._seq = itertools.count(1)
        self.exhausted = False

    def next_inst(self) -> Optional[DynInst]:
        """Execute one instruction functionally; None when the guest halts."""
        cpu = self.cpu
        if self.exhausted or cpu.stop_fetch:
            self.exhausted = True
            return None
        pc = cpu.regs.pc
        word = cpu.fetch_word(pc)
        inst = cpu.decode_inst(word, pc)
        mem_addr = inst.ea(cpu) if inst.is_mem else None
        next_pc = cpu.execute_inst(inst)
        cpu.regs.pc = next_pc
        taken = inst.is_control and next_pc != pc + INST_BYTES
        dyn = DynInst(next(self._seq), pc, inst, next_pc, mem_addr, taken)
        if cpu.stop_fetch:
            self.exhausted = True
        return dyn
