"""MinorCPU: an in-order pipeline with detailed memory timing.

Models gem5's Minor CPU at the fidelity the paper exercises: a four-stage
in-order pipeline (fetch → decode → execute → writeback) with a
tournament branch predictor, per-class functional-unit latencies,
line-granular instruction fetch through the timing icache, and blocking
loads through the timing dcache.  Mispredicted branches stall fetch until
resolution plus a resteer penalty.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ...events import CPU_TICK_PRI, Event
from ..mem.packet import Packet
from .base import BaseCPU
from .branchpred import TournamentBP
from .dyninst import DynInst, InstStream


class _PipelineTick(Event):
    __slots__ = ("cpu",)

    def __init__(self, cpu: "MinorCPU") -> None:
        super().__init__(name=f"{cpu.name}.tick", priority=CPU_TICK_PRI)
        self.cpu = cpu

    def process(self) -> None:
        self.cpu.tick()


class MinorCPU(BaseCPU):
    """In-order pipelined CPU."""

    cpu_type = "minor"
    defer_halt = True

    def __init__(self, name: str, parent, cpu_id: int = 0,
                 fetch_width: int = 2, issue_width: int = 2,
                 commit_width: int = 2, fetch_buffer: int = 8,
                 inflight_window: int = 4,
                 resteer_penalty: int = 3, line_size: int = 64) -> None:
        super().__init__(name, parent, cpu_id)
        self.fetch_width = fetch_width
        self.issue_width = issue_width
        self.commit_width = commit_width
        self.fetch_buffer_size = fetch_buffer
        self.inflight_window = inflight_window
        self.resteer_penalty = resteer_penalty
        self.line_size = line_size
        self.bpred = TournamentBP()
        self.stream = InstStream(self)
        self._fetch_q: deque[DynInst] = deque()
        self._exec_q: deque[DynInst] = deque()
        self._inflight_loads: dict[int, DynInst] = {}
        self._fetch_line: Optional[int] = None  # line currently resident
        self._ifetch_pending = False
        self._fetch_blocked_on: Optional[DynInst] = None
        self._reg_ready: dict[tuple[bool, int], int] = {}
        self._tick_event = _PipelineTick(self)
        self._tick_scheduled = False
        self._last_account_tick = 0
        self._pc_cursor: Optional[int] = None
        # Host instrumentation: Minor's stage functions.
        self._fn_tick = self.host_fn("MinorCPU::tick")
        self._fn_f1 = self.host_fn("Fetch1::evaluate")
        self._fn_f2 = self.host_fn("Fetch2::evaluate")
        self._fn_dec = self.host_fn("Minor::Decode::evaluate")
        self._fn_exec = self.host_fn("Minor::Execute::evaluate")
        self._fn_lsq = self.host_fn("Minor::LSQ::pushRequest")
        self._fn_bp = self.host_fn("BPredUnit::predict")
        self._fn_bp_update = self.host_fn("BPredUnit::update")
        self._scoreboard_host = self.host_alloc(64 * 8, "scoreboard")
        self._fn_scoreboard = self.host_fn("Minor::Scoreboard::canInstIssue")

    def reg_stats(self) -> None:
        super().reg_stats()
        stats = self.stats
        self.stat_mispredicts = stats.scalar(
            "branchMispredicts", "resolved mispredicted branches")
        self.stat_fetch_stall_cycles = stats.scalar(
            "fetchStallCycles", "cycles fetch was blocked on a resteer")
        self.stat_issued = stats.scalar("numIssued", "instructions issued")

    # ------------------------------------------------------------------
    # run control
    # ------------------------------------------------------------------
    def activate(self) -> None:
        self._pc_cursor = self.regs.pc
        self._schedule_tick(0)

    def _schedule_tick(self, delay_cycles: int) -> None:
        if not self._tick_scheduled and not self._halted:
            self._tick_scheduled = True
            self.schedule_in(self._tick_event, self.cycles(delay_cycles))

    # ------------------------------------------------------------------
    # the pipeline
    # ------------------------------------------------------------------
    def tick(self) -> None:
        self._tick_scheduled = False
        self.host_record(self._fn_tick)
        self._account_cycles()
        self._commit_stage()
        self._execute_stage()
        self._fetch_stage()
        if self._halted:
            return
        if self._drained():
            self.finish_halt()
            return
        if self._work_pending():
            self._schedule_tick(1)
        # otherwise sleep; a memory response will reschedule us.

    def _drained(self) -> bool:
        return (self._halt_pending and not self._fetch_q
                and not self._exec_q and not self._inflight_loads)

    def _work_pending(self) -> bool:
        if self._fetch_q or self._exec_q:
            if (self._inflight_loads and not self._can_issue_any()
                    and not self._can_commit_any()):
                return False  # fully stalled on memory; response wakes us
            return True
        if self._inflight_loads or self._ifetch_pending:
            return False  # memory will wake us
        return not self.stream.exhausted

    def _can_issue_any(self) -> bool:
        if not self._fetch_q or len(self._exec_q) >= self.inflight_window:
            return False
        return self._sources_ready(self._fetch_q[0])

    def _can_commit_any(self) -> bool:
        return bool(self._exec_q) and self._exec_q[0].done

    # -- fetch ---------------------------------------------------------
    def _fetch_stage(self) -> None:
        self.host_record(self._fn_f1)
        if self._fetch_blocked_on is not None:
            blocker = self._fetch_blocked_on
            resume = (None if blocker.complete_tick is None else
                      blocker.complete_tick + self.cycles(self.resteer_penalty))
            if resume is not None and self.now >= resume:
                self._fetch_blocked_on = None
            else:
                self.stat_fetch_stall_cycles.inc()
                return
        if self._ifetch_pending:
            return
        fetched = 0
        while (fetched < self.fetch_width
               and len(self._fetch_q) < self.fetch_buffer_size
               and not self.stream.exhausted):
            cursor = self._pc_cursor
            line = None if cursor is None else cursor & ~(self.line_size - 1)
            if line is not None and line != self._fetch_line:
                self._issue_ifetch(line)
                return
            self.host_record(self._fn_f2)
            dyn = self.stream.next_inst()
            if dyn is None:
                return
            self._pc_cursor = dyn.next_pc
            fetched += 1
            self._predict(dyn)
            self._fetch_q.append(dyn)
            if dyn.mispredicted:
                self._fetch_blocked_on = dyn
                return

    def _issue_ifetch(self, line: int) -> None:
        self.host_record(self._fn_fetch)
        pkt = self.make_ifetch(line, self.line_size)
        pkt.push_state(self)
        self._ifetch_pending = True
        self.icache_port.send_timing_req(pkt)

    def _predict(self, dyn: DynInst) -> None:
        if not dyn.inst.is_control:
            return
        self.host_record(self._fn_bp)
        taken, target = self.bpred.predict(dyn.pc, dyn.inst)
        self.bpred.on_fetch(dyn.pc, dyn.inst)
        correct = (taken == dyn.taken) and (not dyn.taken or target == dyn.next_pc)
        dyn.mispredicted = not correct
        self.host_record(self._fn_bp_update)
        self.bpred.update(dyn.pc, dyn.inst, dyn.taken, dyn.next_pc,
                          dyn.mispredicted)

    # -- decode + execute (in-order issue) --------------------------------
    def _execute_stage(self) -> None:
        self.host_record(self._fn_exec)
        issued = 0
        while (issued < self.issue_width and self._fetch_q
               and len(self._exec_q) < self.inflight_window):
            dyn = self._fetch_q[0]
            self.host_record(self._fn_dec)
            self.host_record(self._fn_scoreboard,
                             self._scoreboard_host)
            if not self._sources_ready(dyn):
                break
            self._fetch_q.popleft()
            self._exec_q.append(dyn)
            dyn.issued = True
            issued += 1
            self.stat_issued.inc()
            if dyn.inst.is_load and self._device_at(dyn.mem_addr or 0) is None:
                self._issue_load(dyn)
            else:
                latency = dyn.inst.op_latency
                if dyn.inst.is_store:
                    latency = 1  # stores complete into the write buffer
                dyn.complete_tick = self.now + self.cycles(latency)
                self._set_dest_ready(dyn)

    def _sources_ready(self, dyn: DynInst) -> bool:
        now = self.now
        return all(self._reg_ready.get(src, 0) <= now for src in dyn.src_regs)

    def _set_dest_ready(self, dyn: DynInst) -> None:
        if dyn.dst_reg is not None:
            assert dyn.complete_tick is not None
            self._reg_ready[dyn.dst_reg] = dyn.complete_tick

    def _issue_load(self, dyn: DynInst) -> None:
        assert dyn.mem_addr is not None
        self.host_record(self._fn_lsq)
        pkt = self.make_data_req(dyn.inst, dyn.mem_addr)
        pkt.push_state(self)
        self._inflight_loads[pkt.packet_id] = dyn
        self.dcache_port.send_timing_req(pkt)

    # -- commit ----------------------------------------------------------
    def _commit_stage(self) -> None:
        committed = 0
        while committed < self.commit_width and self._exec_q:
            dyn = self._exec_q[0]
            if not dyn.is_ready(self.now):
                break
            self._exec_q.popleft()
            committed += 1
            self.stat_committed.inc()
            if dyn.mispredicted:
                self.stat_mispredicts.inc()

    # ------------------------------------------------------------------
    # memory responses
    # ------------------------------------------------------------------
    def recv_timing_resp(self, pkt: Packet) -> None:
        owner = pkt.pop_state()
        assert owner is self
        if pkt.is_instruction:
            self._ifetch_pending = False
            self._fetch_line = pkt.addr
        else:
            dyn = self._inflight_loads.pop(pkt.packet_id)
            dyn.complete_tick = self.now
            self._set_dest_ready(dyn)
        self._schedule_tick(1)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def _account_cycles(self) -> None:
        now = self.now
        self.stat_cycles.inc(self.clock.ticks_to_cycles(
            now - self._last_account_tick))
        self._last_account_tick = now
