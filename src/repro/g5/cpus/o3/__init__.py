"""O3CPU: the out-of-order superscalar CPU model and its structures."""

from .core import O3CPU
from .iq import FUPool, InstructionQueue, fu_class
from .lsq import LSQ
from .rob import ROB

__all__ = ["FUPool", "InstructionQueue", "LSQ", "O3CPU", "ROB", "fu_class"]
