"""Reorder buffer for the O3 CPU."""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..dyninst import DynInst


class ROB:
    """A bounded in-order retirement window."""

    def __init__(self, entries: int) -> None:
        if entries <= 0:
            raise ValueError(f"ROB needs a positive entry count, got {entries}")
        self.entries = entries
        self._queue: deque[DynInst] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.entries

    @property
    def free_entries(self) -> int:
        return self.entries - len(self._queue)

    def insert(self, dyn: DynInst) -> None:
        if self.full:
            raise RuntimeError("ROB overflow: caller must check full first")
        self._queue.append(dyn)

    def head(self) -> Optional[DynInst]:
        return self._queue[0] if self._queue else None

    def retire_head(self) -> DynInst:
        return self._queue.popleft()

    @property
    def occupancy(self) -> float:
        return len(self._queue) / self.entries
