"""Instruction queue and functional-unit pool for the O3 CPU."""

from __future__ import annotations

from dataclasses import dataclass

from ...isa import Opcode, StaticInst
from ..dyninst import DynInst


@dataclass(frozen=True)
class FUPool:
    """Counts of functional units per class (per cycle issue capacity)."""

    int_alu: int = 4
    int_muldiv: int = 1
    fp_alu: int = 2
    fp_muldiv: int = 1
    mem_ports: int = 2

    def slots(self) -> dict[str, int]:
        return {
            "int_alu": self.int_alu,
            "int_muldiv": self.int_muldiv,
            "fp_alu": self.fp_alu,
            "fp_muldiv": self.fp_muldiv,
            "mem": self.mem_ports,
        }


def fu_class(inst: StaticInst) -> str:
    """Functional-unit class an instruction issues to."""
    if inst.is_mem:
        return "mem"
    op = inst.opcode
    if op in (Opcode.MUL, Opcode.DIV, Opcode.REM):
        return "int_muldiv"
    if op in (Opcode.FMUL, Opcode.FDIV, Opcode.FSQRT, Opcode.FMADD):
        return "fp_muldiv"
    if inst.is_fp:
        return "fp_alu"
    return "int_alu"


class InstructionQueue:
    """Out-of-order scheduler window."""

    def __init__(self, entries: int, fu_pool: FUPool) -> None:
        if entries <= 0:
            raise ValueError(f"IQ needs a positive entry count, got {entries}")
        self.entries = entries
        self.fu_pool = fu_pool
        self._insts: list[DynInst] = []

    def __len__(self) -> int:
        return len(self._insts)

    @property
    def full(self) -> bool:
        return len(self._insts) >= self.entries

    def insert(self, dyn: DynInst) -> None:
        if self.full:
            raise RuntimeError("IQ overflow: caller must check full first")
        self._insts.append(dyn)

    def schedule_ready(self, now: int, issue_width: int) -> list[DynInst]:
        """Pick ready instructions (oldest first) respecting FU capacity."""
        slots = self.fu_pool.slots()
        picked: list[DynInst] = []
        for dyn in self._insts:
            if len(picked) >= issue_width:
                break
            if not self._deps_ready(dyn, now):
                continue
            cls = fu_class(dyn.inst)
            if slots[cls] <= 0:
                continue
            slots[cls] -= 1
            picked.append(dyn)
        for dyn in picked:
            self._insts.remove(dyn)
        return picked

    def schedulable(self, now: int) -> bool:
        """True if at least one queued instruction could issue this cycle."""
        return any(self._deps_ready(dyn, now) for dyn in self._insts)

    @staticmethod
    def _deps_ready(dyn: DynInst, now: int) -> bool:
        return all(dep.complete_tick is not None and dep.complete_tick <= now
                   for dep in dyn.deps)
