"""O3CPU: out-of-order superscalar CPU model.

Modelled on gem5's O3 (itself loosely based on the Alpha 21264): a
seven-stage machine collapsed into per-cycle fetch → rename/dispatch →
issue → writeback → commit evaluation with a reorder buffer, instruction
queue, split load/store queues, a functional-unit pool, and a tournament
branch predictor.  Like Minor, the model is timing-directed (see
:mod:`repro.g5.cpus.dyninst`): functional execution follows the correct
path, mispredicted branches stall fetch until resolution plus a resteer
penalty.

This is the most work per simulated instruction of the four models —
which is exactly the property the paper measures (O3 simulations touch
the most simulator code and are the slowest to run on the host).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ....events import CPU_TICK_PRI, Event
from ...mem.packet import Packet
from ..base import BaseCPU
from ..branchpred import TournamentBP
from ..dyninst import DynInst, InstStream
from .iq import FUPool, InstructionQueue
from .lsq import LSQ
from .rob import ROB


class _O3Tick(Event):
    __slots__ = ("cpu",)

    def __init__(self, cpu: "O3CPU") -> None:
        super().__init__(name=f"{cpu.name}.tick", priority=CPU_TICK_PRI)
        self.cpu = cpu

    def process(self) -> None:
        self.cpu.tick()


class O3CPU(BaseCPU):
    """Out-of-order superscalar CPU."""

    cpu_type = "o3"
    defer_halt = True

    def __init__(self, name: str, parent, cpu_id: int = 0,
                 width: int = 8, rob_entries: int = 192,
                 iq_entries: int = 64, lq_entries: int = 32,
                 sq_entries: int = 32, fu_pool: Optional[FUPool] = None,
                 resteer_penalty: int = 8, fetch_buffer: int = 32,
                 line_size: int = 64) -> None:
        super().__init__(name, parent, cpu_id)
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        self.width = width
        self.resteer_penalty = resteer_penalty
        self.fetch_buffer_size = fetch_buffer
        self.line_size = line_size
        self.rob = ROB(rob_entries)
        self.iq = InstructionQueue(iq_entries, fu_pool or FUPool())
        self.lsq = LSQ(lq_entries, sq_entries)
        self.bpred = TournamentBP()
        self.stream = InstStream(self)
        self._fetch_q: deque[DynInst] = deque()
        self._producers: dict[tuple[bool, int], DynInst] = {}
        self._inflight_loads: dict[int, DynInst] = {}
        self._store_resps_pending: set[int] = set()
        self._fetch_line: Optional[int] = None
        self._ifetch_pending = False
        self._fetch_blocked_on: Optional[DynInst] = None
        self._pc_cursor: Optional[int] = None
        self._tick_event = _O3Tick(self)
        self._tick_scheduled = False
        self._last_account_tick = 0
        # Host instrumentation: the O3 stage zoo (large code footprint).
        self._fn_tick = self.host_fn("O3CPU::tick")
        self._fn_fetch_stage = self.host_fn("o3::Fetch::tick")
        self._fn_fetch_line = self.host_fn("o3::Fetch::fetchCacheLine")
        self._fn_decode_stage = self.host_fn("o3::Decode::tick")
        self._fn_rename = self.host_fn("o3::Rename::renameInsts")
        self._fn_rename_map = self.host_fn("o3::UnifiedRenameMap::rename")
        self._fn_iew = self.host_fn("o3::IEW::tick")
        self._fn_iq_sched = self.host_fn(
            "o3::InstructionQueue::scheduleReadyInsts")
        self._fn_iq_wake = self.host_fn("o3::InstructionQueue::wakeDependents")
        self._fn_lsq_push = self.host_fn("o3::LSQUnit::executeLoad")
        self._fn_lsq_store = self.host_fn("o3::LSQUnit::executeStore")
        self._fn_commit = self.host_fn("o3::Commit::commitInsts")
        self._fn_rob_fn = self.host_fn("o3::ROB::retireHead")
        self._fn_bp = self.host_fn("BPredUnit::predict")
        self._fn_bp_update = self.host_fn("BPredUnit::update")
        self._fn_squash = self.host_fn("o3::Fetch::squash")
        self._rob_host = self.host_alloc(rob_entries * 64, "rob")
        self._iq_host = self.host_alloc(iq_entries * 48, "iq")
        self._lsq_host = self.host_alloc((lq_entries + sq_entries) * 48, "lsq")
        self._rename_host = self.host_alloc(64 * 16, "renameMap")

    def reg_stats(self) -> None:
        super().reg_stats()
        stats = self.stats
        self.stat_mispredicts = stats.scalar(
            "branchMispredicts", "resolved mispredicted branches")
        self.stat_fetch_stall_cycles = stats.scalar(
            "fetchStallCycles", "cycles fetch was blocked on a resteer")
        self.stat_issued = stats.scalar("numIssued", "instructions issued")
        self.stat_rob_occupancy = stats.distribution(
            "robOccupancy", 0, 1.0, 10, "ROB occupancy fraction per cycle")
        self.stat_forwarded = stats.formula(
            "lsqForwardedLoads", lambda: self.lsq.forwarded,
            "loads satisfied by store forwarding")

    # ------------------------------------------------------------------
    # run control
    # ------------------------------------------------------------------
    def activate(self) -> None:
        self._pc_cursor = self.regs.pc
        self._schedule_tick(0)

    def _schedule_tick(self, delay_cycles: int) -> None:
        if not self._tick_scheduled and not self._halted:
            self._tick_scheduled = True
            self.schedule_in(self._tick_event, self.cycles(delay_cycles))

    # ------------------------------------------------------------------
    # per-cycle evaluation (back to front, like gem5)
    # ------------------------------------------------------------------
    def tick(self) -> None:
        self._tick_scheduled = False
        self.host_record(self._fn_tick)
        self._account_cycles()
        self.stat_rob_occupancy.sample(self.rob.occupancy)
        self._commit_stage()
        self._issue_stage()
        self._dispatch_stage()
        self._fetch_stage()
        if self._halted:
            return
        if self._drained():
            self.finish_halt()
            return
        if self._work_pending():
            self._schedule_tick(1)

    def _drained(self) -> bool:
        return (self._halt_pending and not self._fetch_q and not len(self.rob)
                and not self._inflight_loads)

    def _work_pending(self) -> bool:
        if self._fetch_q or len(self.rob):
            if self._only_waiting_on_memory():
                return False
            return True
        if self._inflight_loads or self._ifetch_pending:
            return False
        return not self.stream.exhausted

    def _only_waiting_on_memory(self) -> bool:
        """True when no pipeline stage can advance until a response arrives."""
        if not self._inflight_loads and not self._ifetch_pending:
            return False
        head = self.rob.head()
        if head is not None and head.is_ready(self.now):
            return False
        if self._fetch_q and not self.rob.full:
            return False
        if self._can_fetch_more():
            return False
        # Anything ready in the IQ?
        return not self.iq.schedulable(self.now)

    # -- commit ----------------------------------------------------------
    def _commit_stage(self) -> None:
        self.host_record(self._fn_commit)
        committed = 0
        while committed < self.width:
            head = self.rob.head()
            if head is None or not head.is_ready(self.now):
                break
            self.host_record(self._fn_rob_fn,
                             self._rob_host + (head.seq % 192) * 64)
            self.rob.retire_head()
            if head.inst.is_mem:
                self.lsq.retire(head)
                if head.inst.is_store:
                    self._send_store(head)
            if head.mispredicted:
                self.stat_mispredicts.inc()
            self.stat_committed.inc()
            committed += 1

    def _send_store(self, dyn: DynInst) -> None:
        """Write the committed store out through the dcache."""
        assert dyn.mem_addr is not None
        if self._device_at(dyn.mem_addr) is not None:
            return
        self.host_record(self._fn_lsq_store, self._lsq_host)
        pkt = self.make_data_req(dyn.inst, dyn.mem_addr)
        pkt.push_state(self)
        self._store_resps_pending.add(pkt.packet_id)
        self.dcache_port.send_timing_req(pkt)

    # -- issue ----------------------------------------------------------
    def _issue_stage(self) -> None:
        self.host_record(self._fn_iew)
        self.host_record(self._fn_iq_sched, self._iq_host)
        for dyn in self.iq.schedule_ready(self.now, self.width):
            dyn.issued = True
            self.stat_issued.inc()
            self.host_record(self._fn_iq_wake, self._iq_host)
            if dyn.inst.is_load:
                self._issue_load(dyn)
            elif dyn.inst.is_store:
                # Address generation only; data leaves at commit.
                dyn.complete_tick = self.now + self.cycles(1)
            else:
                dyn.complete_tick = self.now + self.cycles(dyn.inst.op_latency)

    def _issue_load(self, dyn: DynInst) -> None:
        assert dyn.mem_addr is not None
        self.host_record(self._fn_lsq_push, self._lsq_host)
        if self._device_at(dyn.mem_addr) is not None:
            dyn.complete_tick = self.now + self.cycles(2)
            return
        store = self.lsq.forwarding_store(dyn)
        if store is not None:
            dyn.complete_tick = self.now + self.cycles(1)
            return
        pkt = self.make_data_req(dyn.inst, dyn.mem_addr)
        pkt.push_state(self)
        self._inflight_loads[pkt.packet_id] = dyn
        self.dcache_port.send_timing_req(pkt)

    # -- rename / dispatch -------------------------------------------------
    def _dispatch_stage(self) -> None:
        self.host_record(self._fn_decode_stage)
        self.host_record(self._fn_rename)
        dispatched = 0
        while (dispatched < self.width and self._fetch_q
               and not self.rob.full and not self.iq.full):
            dyn = self._fetch_q[0]
            if not self.lsq.can_insert(dyn):
                break
            self._fetch_q.popleft()
            self.host_record(self._fn_rename_map,
                             self._rename_host + (dyn.seq % 64) * 16)
            dyn.deps = tuple(
                producer for src in dyn.src_regs
                if (producer := self._producers.get(src)) is not None
                and not producer.done)
            if dyn.dst_reg is not None:
                self._producers[dyn.dst_reg] = dyn
            self.rob.insert(dyn)
            self.lsq.insert(dyn)
            if self._is_pipelined_nop(dyn):
                dyn.complete_tick = self.now + self.cycles(1)
            else:
                self.iq.insert(dyn)
            dispatched += 1

    @staticmethod
    def _is_pipelined_nop(dyn: DynInst) -> bool:
        op = dyn.inst
        return op.is_halt or op.is_syscall or (
            not op.is_mem and not op.is_control and dyn.dst_reg is None
            and not dyn.src_regs)

    # -- fetch ----------------------------------------------------------
    def _can_fetch_more(self) -> bool:
        return (self._fetch_blocked_on is None
                and not self._ifetch_pending
                and len(self._fetch_q) < self.fetch_buffer_size
                and not self.stream.exhausted)

    def _fetch_stage(self) -> None:
        self.host_record(self._fn_fetch_stage)
        if self._fetch_blocked_on is not None:
            blocker = self._fetch_blocked_on
            resume = (None if blocker.complete_tick is None else
                      blocker.complete_tick + self.cycles(self.resteer_penalty))
            if resume is not None and self.now >= resume:
                self.host_record(self._fn_squash)
                self._fetch_blocked_on = None
            else:
                self.stat_fetch_stall_cycles.inc()
                return
        if self._ifetch_pending:
            return
        fetched = 0
        while fetched < self.width and self._can_fetch_more():
            cursor = self._pc_cursor
            line = None if cursor is None else cursor & ~(self.line_size - 1)
            if line is not None and line != self._fetch_line:
                self._issue_ifetch(line)
                return
            dyn = self.stream.next_inst()
            if dyn is None:
                return
            self._pc_cursor = dyn.next_pc
            fetched += 1
            self._predict(dyn)
            self._fetch_q.append(dyn)
            if dyn.mispredicted:
                self._fetch_blocked_on = dyn
                return

    def _issue_ifetch(self, line: int) -> None:
        self.host_record(self._fn_fetch_line)
        pkt = self.make_ifetch(line, self.line_size)
        pkt.push_state(self)
        self._ifetch_pending = True
        self.icache_port.send_timing_req(pkt)

    def _predict(self, dyn: DynInst) -> None:
        if not dyn.inst.is_control:
            return
        self.host_record(self._fn_bp)
        taken, target = self.bpred.predict(dyn.pc, dyn.inst)
        self.bpred.on_fetch(dyn.pc, dyn.inst)
        correct = (taken == dyn.taken) and (not dyn.taken
                                            or target == dyn.next_pc)
        dyn.mispredicted = not correct
        self.host_record(self._fn_bp_update)
        self.bpred.update(dyn.pc, dyn.inst, dyn.taken, dyn.next_pc,
                          dyn.mispredicted)

    # ------------------------------------------------------------------
    # memory responses
    # ------------------------------------------------------------------
    def recv_timing_resp(self, pkt: Packet) -> None:
        owner = pkt.pop_state()
        assert owner is self
        if pkt.is_instruction:
            self._ifetch_pending = False
            self._fetch_line = pkt.addr
        elif pkt.packet_id in self._store_resps_pending:
            self._store_resps_pending.discard(pkt.packet_id)
        else:
            dyn = self._inflight_loads.pop(pkt.packet_id)
            dyn.complete_tick = self.now
        self._schedule_tick(1)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def _account_cycles(self) -> None:
        now = self.now
        self.stat_cycles.inc(self.clock.ticks_to_cycles(
            now - self._last_account_tick))
        self._last_account_tick = now
