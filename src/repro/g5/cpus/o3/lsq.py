"""Load/store queue for the O3 CPU.

Tracks in-flight memory instructions, enforces load/store-queue capacity,
and implements store-to-load forwarding: a load whose address overlaps an
older, still-queued store gets its data from the store buffer instead of
the cache.
"""

from __future__ import annotations

from ..dyninst import DynInst


class LSQ:
    """Split load queue / store queue."""

    def __init__(self, lq_entries: int, sq_entries: int) -> None:
        if lq_entries <= 0 or sq_entries <= 0:
            raise ValueError("LQ/SQ entry counts must be positive")
        self.lq_entries = lq_entries
        self.sq_entries = sq_entries
        self._loads: list[DynInst] = []
        self._stores: list[DynInst] = []
        self.forwarded = 0

    # -- capacity ----------------------------------------------------------
    @property
    def lq_full(self) -> bool:
        return len(self._loads) >= self.lq_entries

    @property
    def sq_full(self) -> bool:
        return len(self._stores) >= self.sq_entries

    def can_insert(self, dyn: DynInst) -> bool:
        if dyn.inst.is_load:
            return not self.lq_full
        if dyn.inst.is_store:
            return not self.sq_full
        return True

    def insert(self, dyn: DynInst) -> None:
        if dyn.inst.is_load:
            if self.lq_full:
                raise RuntimeError("LQ overflow: caller must check capacity")
            self._loads.append(dyn)
        elif dyn.inst.is_store:
            if self.sq_full:
                raise RuntimeError("SQ overflow: caller must check capacity")
            self._stores.append(dyn)

    # -- forwarding ----------------------------------------------------------
    def forwarding_store(self, load: DynInst) -> DynInst | None:
        """Oldest-younger rule: youngest older store overlapping the load."""
        assert load.mem_addr is not None
        lo = load.mem_addr
        hi = lo + load.inst.mem_size
        best: DynInst | None = None
        for store in self._stores:
            if store.seq >= load.seq or store.mem_addr is None:
                continue
            s_lo = store.mem_addr
            s_hi = s_lo + store.inst.mem_size
            if s_lo < hi and lo < s_hi:
                if best is None or store.seq > best.seq:
                    best = store
        if best is not None:
            self.forwarded += 1
        return best

    # -- retirement ----------------------------------------------------------
    def retire(self, dyn: DynInst) -> None:
        """Remove a committed memory instruction from its queue."""
        if dyn.inst.is_load and dyn in self._loads:
            self._loads.remove(dyn)
        elif dyn.inst.is_store and dyn in self._stores:
            self._stores.remove(dyn)

    @property
    def load_count(self) -> int:
        return len(self._loads)

    @property
    def store_count(self) -> int:
        return len(self._stores)
