"""g5 CPU models: Atomic, Timing, Minor (in-order), and O3 (out-of-order)."""

from .atomic import AtomicSimpleCPU
from .base import BaseCPU, CPUError
from .branchpred import TournamentBP
from .dyninst import DynInst, InstStream
from .minor import MinorCPU
from .o3 import O3CPU
from .timing import TimingSimpleCPU

#: Paper-facing names of the four CPU models.
CPU_MODELS = {
    "atomic": AtomicSimpleCPU,
    "timing": TimingSimpleCPU,
    "minor": MinorCPU,
    "o3": O3CPU,
}

__all__ = [
    "AtomicSimpleCPU",
    "BaseCPU",
    "CPUError",
    "CPU_MODELS",
    "DynInst",
    "InstStream",
    "MinorCPU",
    "O3CPU",
    "TimingSimpleCPU",
    "TournamentBP",
]
