"""Base class shared by all g5 CPU models.

Implements the :class:`~repro.g5.isa.instructions.ExecContext` protocol
(register access, functional memory, syscalls) plus the plumbing every
CPU model needs: instruction/dcache ports, the decoder, workload binding,
halt/exit handling, and the core statistics (committed instructions,
cycles, IPC/CPI, simSeconds).

All CPU models in this package are *functional-first*: architectural
state is updated in program order the moment an instruction is processed,
and the model-specific machinery (pipelines, ROBs, cache misses) decides
how much simulated time that processing costs.  This mirrors how the
simple gem5 CPUs work and is a standard, deterministic approximation for
the detailed ones.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ...events import SimObject
from ..isa import INST_BYTES, Decoder, RegisterFile, StaticInst
from ..mem.packet import Packet, ifetch_req, read_req, write_req
from ..mem.port import RequestPort

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from ..se.process import Process
    from ..system import System


class CPUError(RuntimeError):
    """Raised on CPU misconfiguration or guest misbehaviour."""


class BaseCPU(SimObject):
    """Common machinery for Atomic/Timing/Minor/O3 CPU models."""

    #: Human-readable model name, overridden by subclasses.
    cpu_type = "base"

    #: Set by the System from ``SimConfig.fast_path``; models that have a
    #: fast path (Atomic) consult it, the rest ignore it.
    fast_path = False

    def __init__(self, name: str, parent, cpu_id: int = 0) -> None:
        super().__init__(name, parent)
        self.cpu_id = cpu_id
        self.icache_port = RequestPort("icache_port", self)
        self.dcache_port = RequestPort("dcache_port", self)
        # All CPUs in a process share one decode cache (gem5 shares its
        # decode cache per ISA); decoded StaticInsts are immutable.
        self.decoder = Decoder(shared=True)
        self.regs = RegisterFile()
        self.process: Optional["Process"] = None
        self.system: Optional["System"] = None
        self._halted = False
        self._halt_pending = False
        self._halt_cause = ""
        self._npc: Optional[int] = None
        # Fast-path state: bound once at bind() so the hot loop does not
        # chase system.memctrl.memory / system.devices per access.
        self._mem = None
        self._devices: list = []
        # LL/SC reservation table (shared data plane, bound at bind())
        # and, on multi-core systems, the other cores — whose decoded
        # code pages a local store must invalidate (cross-core SMC).
        self._resv = None
        self._peer_cpus: list = []
        # Per-page caches of decoded instructions, used by the atomic
        # fast path (invalidated by write_mem on self-modifying code).
        self._decoded_pages: dict[int, list[Optional[StaticInst]]] = {}
        self._ipage: Optional[list[Optional[StaticInst]]] = None
        self._ipage_base = -1
        # Host identities of the core architectural structures.
        self._regs_host = self.host_alloc(8 * 64, "regfile")
        self._fn_fetch = self.host_fn(f"{self.host_cls}::fetch")
        self._fn_decode = self.host_fn("Decoder::decode")
        self._fn_execute = self.host_fn("StaticInst::execute")
        self._fn_mem = self.host_fn(f"{self.host_cls}::memAccess")
        self._fn_syscall = self.host_fn("Process::syscall")
        self._fn_exec_by_op: dict[int, int] = {}

    @property
    def host_cls(self) -> str:
        """Simulator C++-like class name used for host-function naming."""
        return type(self).__name__

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def reg_stats(self) -> None:
        stats = self.stats
        self.stat_committed = stats.scalar(
            "committedInsts", "number of instructions committed")
        self.stat_cycles = stats.scalar("numCycles", "CPU active cycles")
        self.stat_mem_refs = stats.scalar("numMemRefs", "memory references")
        self.stat_branches = stats.scalar("numBranches", "control insts")
        stats.formula("ipc", lambda: self.stat_committed.value()
                      / max(1, self.stat_cycles.value()),
                      "committed instructions per cycle")
        stats.formula("cpi", lambda: self.stat_cycles.value()
                      / max(1, self.stat_committed.value()),
                      "cycles per committed instruction")

    # ------------------------------------------------------------------
    # workload binding
    # ------------------------------------------------------------------
    def bind(self, system: "System", process: Optional["Process"]) -> None:
        """Attach this CPU to its system and (in SE mode) its process."""
        self.system = system
        self.process = process
        self._mem = system.memctrl.memory
        self._devices = system.devices
        self._resv = system.reservations
        self._peer_cpus = [cpu for cpu in system.cpus if cpu is not self]
        if process is not None:
            self.regs.pc = process.entry
            self.regs.write_int(2, process.stack_top)  # sp

    #: Pipelined CPU models set this so halts wait for the pipeline to
    #: drain (the guest's exit instruction must *commit*, not just fetch).
    defer_halt = False

    @property
    def halted(self) -> bool:
        return self._halted

    @property
    def stop_fetch(self) -> bool:
        """True once no further instructions should enter the machine."""
        return self._halted or self._halt_pending

    def halt(self, cause: str = "target halted") -> None:
        """Stop the CPU; pipelined models defer until the pipeline drains."""
        if self._halted or self._halt_pending:
            return
        if self.defer_halt:
            self._halt_pending = True
            self._halt_cause = cause
            return
        self._halted = True
        self._eventq().exit_simulation(cause)

    def park(self) -> None:
        """Stop this core without ending the simulation (thread exit).

        The execution loops of the simple models check ``_halted`` before
        rescheduling themselves, so a parked core simply stops emitting
        events; :meth:`unpark` plus a fresh start event revives it.
        """
        self._halted = True

    def unpark(self) -> None:
        self._halted = False
        self._halt_pending = False

    def thread_start_event(self, when: int):
        """Event that (re)starts this core's execution loop at ``when``.

        Only the simple models host spawned threads; the pipelined
        models would need drain/restart machinery this PR does not add.
        """
        raise CPUError(
            f"{self.cpu_type} CPUs cannot host spawned threads")

    def finish_halt(self) -> None:
        """Complete a deferred halt once the pipeline has drained."""
        if self._halted or not self._halt_pending:
            return
        self._halt_pending = False
        self._halted = True
        self._eventq().exit_simulation(self._halt_cause or "target halted")

    # ------------------------------------------------------------------
    # ExecContext protocol
    # ------------------------------------------------------------------
    def read_int(self, index: int) -> int:
        return self.regs.read_int(index)

    def write_int(self, index: int, value: int) -> None:
        self.regs.write_int(index, value)

    def read_fp(self, index: int) -> float:
        return self.regs.read_fp(index)

    def write_fp(self, index: int, value: float) -> None:
        self.regs.write_fp(index, value)

    @property
    def pc(self) -> int:
        return self.regs.pc

    def set_npc(self, addr: int) -> None:
        self._npc = addr

    def read_mem(self, addr: int, size: int) -> int:
        """Functional data read (correctness path)."""
        mem = self._mem
        if mem is None:
            device = self._device_at(addr)
            if device is not None:
                return device.read(addr, size)
            return self._memory().read(addr, size)
        for device in self._devices:
            if device.contains(addr):
                return device.read(addr, size)
        return mem.read(addr, size)

    def write_mem(self, addr: int, size: int, value: int) -> None:
        """Functional data write (correctness path)."""
        mem = self._mem
        if mem is None:
            device = self._device_at(addr)
            if device is not None:
                device.write(addr, size, value)
                return
            self._memory().write(addr, size, value)
        else:
            for device in self._devices:
                if device.contains(addr):
                    device.write(addr, size, value)
                    return
            mem.write(addr, size, value)
        resv = self._resv
        if resv is not None and resv.count:
            # Remote (and own) LL reservations on the written granule
            # are lost — the functional face of a snoop invalidation.
            resv.clear_range(addr, size)
        if self._decoded_pages:
            self._invalidate_decoded(addr, size)
        if self._peer_cpus:
            for peer in self._peer_cpus:
                if peer._decoded_pages:
                    peer._invalidate_decoded(addr, size)

    def _invalidate_decoded(self, addr: int, size: int) -> None:
        """Drop decoded-instruction pages a store just wrote into
        (self-modifying code support for the fast fetch path)."""
        first = addr & ~0xFFF
        last = (addr + size - 1) & ~0xFFF
        page = first
        while page <= last:
            if self._decoded_pages.pop(page, None) is not None:
                self._ipage = None
                self._ipage_base = -1
            page += 0x1000

    def pseudo_op(self, op: int) -> None:
        """Service an m5-style pseudo instruction."""
        if self.system is None:
            raise CPUError(f"{self.path}: m5op with no system bound")
        self.system.pseudo_ops.handle(op, self)

    def load_reserved(self, addr: int) -> None:
        """LL: take a reservation on the granule holding ``addr``."""
        if self._resv is None:
            raise CPUError(f"{self.path}: ll with no system bound")
        self._resv.place(self.cpu_id, addr)

    def store_conditional(self, addr: int, size: int, value: int) -> bool:
        """SC: write only if this core's reservation survived."""
        resv = self._resv
        if resv is None or not resv.consume(self.cpu_id, addr):
            return False
        self.write_mem(addr, size, value)
        return True

    def syscall(self) -> None:
        self.host_record(self._fn_syscall)
        if self.process is not None:
            self.process.handle_syscall(self)
        elif self.system is not None and self.system.kernel is not None:
            self.system.kernel.handle_trap(self)
        else:
            raise CPUError(f"{self.path}: ecall with no workload bound")

    # ------------------------------------------------------------------
    # shared execution helpers
    # ------------------------------------------------------------------
    def fetch_word(self, pc: int) -> int:
        """Functionally read the instruction word at ``pc``."""
        mem = self._mem
        if mem is None:
            return self._memory().read(pc, INST_BYTES)
        return mem.read(pc, INST_BYTES)

    def decode_inst(self, word: int, pc: Optional[int] = None) -> StaticInst:
        self.host_record(self._fn_decode)
        return self.decoder.decode(word, pc)

    def fetch_decode(self, pc: int) -> StaticInst:
        """Fetch + decode through the per-page decoded-instruction cache.

        Equivalent to ``decode_inst(fetch_word(pc), pc)`` (including the
        host-trace record) but caches the decoded StaticInst per code
        page so the hot path is two shifts and a list index.  write_mem
        invalidates pages on stores (self-modifying code).
        """
        if self._rec_live:
            self.recorder.record(self._fn_decode, 0)
        base = pc & ~0xFFF
        if base != self._ipage_base:
            page = self._decoded_pages.get(base)
            if page is None:
                page = self._decoded_pages[base] = [None] * 1024
            self._ipage = page
            self._ipage_base = base
        inst = self._ipage[(pc & 0xFFF) >> 2]
        if inst is None:
            word = self.fetch_word(pc)
            inst = self.decoder.decode(word, pc)
            self._ipage[(pc & 0xFFF) >> 2] = inst
        return inst

    def execute_inst(self, inst: StaticInst) -> int:
        """Execute ``inst`` against architectural state; returns next PC.

        Records per-opcode host execute functions (gem5 generates one
        ``execute()`` per instruction class, a large slice of its code).
        """
        if self._rec_live:
            fn = self._fn_exec_by_op.get(inst.opcode)
            if fn is None:
                fn = self.host_fn(f"{inst.mnemonic.capitalize()}::execute")
                self._fn_exec_by_op[inst.opcode] = fn
            self.recorder.record(fn, self._regs_host + inst.rd * 8)
        self._npc = None
        inst._exec(inst, self)
        if inst.is_mem:
            self.stat_mem_refs.inc()
        if inst.is_control:
            self.stat_branches.inc()
        if inst.is_halt:
            self.halt("target called exit()")
        next_pc = self._npc if self._npc is not None else self.regs.pc + INST_BYTES
        self._npc = None
        return next_pc

    # timing-mode packet builders -----------------------------------------
    def make_ifetch(self, pc: int, line_size: int = 64) -> Packet:
        line = pc & ~(line_size - 1)
        return ifetch_req(line, line_size, req_tick=self.now)

    def make_data_req(self, inst: StaticInst, addr: int) -> Packet:
        if inst.is_store:
            return write_req(addr, inst.mem_size, 0, req_tick=self.now)
        return read_req(addr, inst.mem_size, req_tick=self.now)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _memory(self):
        if self.system is None:
            raise CPUError(f"{self.path} is not bound to a system")
        return self.system.memctrl.memory

    def _device_at(self, addr: int):
        if self.system is None:
            return None
        return self.system.device_at(addr)

    # Port protocol defaults (overridden by timing CPUs) -----------------
    def recv_timing_resp(self, pkt: Packet) -> None:  # pragma: no cover
        raise CPUError(f"{self.path} received unexpected timing response")

    def recv_req_retry(self) -> None:  # pragma: no cover
        pass
