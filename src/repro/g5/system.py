"""System assembly: wiring CPUs, caches, interconnect, memory, devices.

This module plays the role of gem5's ``configs/`` scripts: a
:class:`SimConfig` describes the simulated machine, :func:`build_system`
instantiates and wires it, and :func:`simulate` runs it to completion and
returns a :class:`SimResult` with gem5-style statistics plus the recorded
host execution trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..events import ClockDomain, EventQueue, Root, ticks_to_seconds
from ..host.trace import ExecutionRecorder, NullRecorder
from .coherence import CoherenceDomain, ReservationSet
from .cpus import CPU_MODELS, BaseCPU
from .fs import MiniKernel, PowerController, Rtc, Uart
from .isa import Program
from .mem import Cache, CacheParams, CoherentXBar, MemCtrl
from .pseudo import PseudoOpHandler
from .se import Process
from .stats import dump_stats

#: Default simulated-system memory size (deliberately small, like the
#: paper's observation that simulated memory is rarely fully touched).
DEFAULT_MEM_SIZE = 32 * 1024 * 1024


@dataclass(frozen=True)
class SimConfig:
    """Configuration of the simulated (guest) machine."""

    cpu_model: str = "atomic"
    mode: str = "se"                      # "se" or "fs"
    cpu_clock_ghz: float = 3.0
    mem_size: int = DEFAULT_MEM_SIZE
    #: Guest cores.  Each core gets a private L1 pair behind the shared
    #: xbar; cores beyond the boot core start parked and are claimed by
    #: the guest thread runtime (m5 thread ops).  Multi-core is SE-only
    #: and limited to the simple (atomic/timing) CPU models.
    cores: int = 1
    #: Snooping MSI coherence over the L1 data caches
    #: (:mod:`repro.g5.coherence`).  None enables it exactly when
    #: ``cores > 1``; force True to route a single-core system through
    #: the coherent path (bit-identical — a one-member domain never
    #: probes anything).
    coherent: Optional[bool] = None
    l1i: CacheParams = field(default_factory=lambda: CacheParams(
        size=32 * 1024, assoc=2, tag_latency=1, data_latency=1))
    l1d: CacheParams = field(default_factory=lambda: CacheParams(
        size=64 * 1024, assoc=2, tag_latency=1, data_latency=1))
    l2: CacheParams = field(default_factory=lambda: CacheParams(
        size=1024 * 1024, assoc=8, tag_latency=4, data_latency=8))
    record: bool = True
    #: Enable the fast-path simulation kernel (zero-heap tick loop,
    #: packet-free atomic memory, decoded-page fetch).  Architectural
    #: state, stats, and host traces are bit-identical either way; the
    #: differential suite runs both settings against each other.
    fast_path: bool = True
    #: Event-queue domains (:mod:`repro.g5.sharded`).  1 = the classic
    #: single global queue.  >1 partitions the graph into one domain per
    #: CPU plus a memory domain; the graph caps the effective count, so
    #: a single-CPU system shards into at most 2 domains.  Sharded runs
    #: are bit-identical to single-queue runs.
    domains: int = 1
    #: Extra latency (in CPU cycles) charged on every cross-domain
    #: boundary crossing.  This is the synchronization quantum knob: 0
    #: (the default) keeps guest timing bit-identical to the unsharded
    #: system; larger values buy scheduling lookahead at the cost of
    #: guest-visible latency (see EXPERIMENTS.md).
    link_latency_cycles: int = 0
    #: Install the sharded boundary links but keep every SimObject on
    #: one event queue — the single-queue reference partner for the
    #: sharded differential suite (identical link semantics, one queue).
    boundary_reference: bool = False
    #: Arm the runtime ownership sanitizer (:mod:`repro.g5.sanitize`):
    #: attribute tripwires on the hot SimObjects record any cross-domain
    #: write that bypasses the boundary channels.  Observe-only — a
    #: sanitized run stays bit-identical — but it adds per-write Python
    #: overhead, so it is off by default.  Requires ``domains >= 2``.
    sanitize: bool = False

    def __post_init__(self) -> None:
        if self.cpu_model not in CPU_MODELS:
            raise ValueError(
                f"unknown CPU model {self.cpu_model!r}; choose from "
                f"{sorted(CPU_MODELS)}")
        if self.mode not in ("se", "fs"):
            raise ValueError(f"mode must be 'se' or 'fs', got {self.mode!r}")
        if not 1 <= self.cores <= 8:
            raise ValueError(f"cores must be in 1..8, got {self.cores}")
        if self.cores > 1:
            if self.mode != "se":
                raise ValueError("multi-core systems are SE-only for now")
            if self.cpu_model not in ("atomic", "timing"):
                raise ValueError(
                    "multi-core systems require a simple CPU model "
                    f"(atomic/timing), got {self.cpu_model!r}")
        if self.domains < 1:
            raise ValueError(f"domains must be >= 1, got {self.domains}")
        if self.link_latency_cycles < 0:
            raise ValueError(
                f"link_latency_cycles must be >= 0, "
                f"got {self.link_latency_cycles}")
        if self.boundary_reference and self.domains > 1:
            raise ValueError(
                "boundary_reference is the single-queue partner of a "
                "sharded run; it requires domains=1")
        if self.sanitize and self.domains < 2:
            raise ValueError(
                "the ownership sanitizer validates the sharded domain "
                "partition; sanitize=True requires domains >= 2")

    def with_cpu(self, cpu_model: str) -> "SimConfig":
        return replace(self, cpu_model=cpu_model)

    def with_mode(self, mode: str) -> "SimConfig":
        return replace(self, mode=mode)

    def with_domains(self, domains: int) -> "SimConfig":
        return replace(self, domains=domains)

    def with_cores(self, cores: int) -> "SimConfig":
        return replace(self, cores=cores)

    @property
    def effective_coherent(self) -> bool:
        """Whether the coherent L1 path is active for this config."""
        return self.coherent if self.coherent is not None else self.cores > 1


class System(Root):
    """The simulated machine: CPU + caches + interconnect + memory."""

    def __init__(self, config: SimConfig,
                 recorder: Optional[ExecutionRecorder] = None) -> None:
        if recorder is None:
            recorder = (ExecutionRecorder() if config.record
                        else NullRecorder())
        super().__init__(
            name="system",
            eventq=EventQueue(fast_path=config.fast_path),
            clock=ClockDomain(config.cpu_clock_ghz * 1e9),
            recorder=recorder,
        )
        self.config = config
        self.memctrl = MemCtrl("mem_ctrl", self, size=config.mem_size)
        cpu_cls = CPU_MODELS[config.cpu_model]
        cores = config.cores
        if cores == 1:
            # Legacy names: single-core object paths (and therefore
            # stats.txt, traces, and goldens) are unchanged.
            self.cpus: list[BaseCPU] = [cpu_cls("cpu", self)]
            self.icaches = [Cache("icache", self, config.l1i)]
            self.dcaches = [Cache("dcache", self, config.l1d)]
        else:
            self.cpus = [cpu_cls(f"cpu{i}", self, cpu_id=i)
                         for i in range(cores)]
            self.icaches = [Cache(f"icache{i}", self, config.l1i)
                            for i in range(cores)]
            self.dcaches = [Cache(f"dcache{i}", self, config.l1d)
                            for i in range(cores)]
        self.cpu: BaseCPU = self.cpus[0]
        self.icache = self.icaches[0]
        self.dcache = self.dcaches[0]
        for cpu in self.cpus:
            cpu.fast_path = config.fast_path
        self.l2bus = CoherentXBar("l2bus", self)
        self.l2cache = Cache("l2", self, config.l2)
        self._wire()
        self.reservations = ReservationSet()
        self.coherence: Optional[CoherenceDomain] = None
        if config.effective_coherent:
            self.coherence = CoherenceDomain()
            for dcache in self.dcaches:
                self.coherence.attach(dcache)
        # Non-boot cores start parked; the guest thread runtime claims
        # them via m5 thread-spawn.
        for cpu in self.cpus[1:]:
            cpu.park()
        self.pseudo_ops = PseudoOpHandler(self)
        self.devices: list = []
        self.kernel: Optional[MiniKernel] = None
        self.process: Optional[Process] = None
        if config.mode == "fs":
            self._add_fs_devices()
        self.reg_all_stats()
        self.boundary_links: list = []
        self.sharded = None
        self.sanitizer = None
        if config.domains > 1 or config.boundary_reference:
            from .sharded import shard_system

            self.sharded = shard_system(self)
        if config.sanitize:
            from .sanitize import install_sanitizer

            self.sanitizer = install_sanitizer(self)

    def _wire(self) -> None:
        for cpu, icache, dcache in zip(self.cpus, self.icaches,
                                       self.dcaches):
            cpu.icache_port.bind(icache.cpu_side)
            cpu.dcache_port.bind(dcache.cpu_side)
            icache.mem_side.bind(self.l2bus.new_cpu_side_port())
            dcache.mem_side.bind(self.l2bus.new_cpu_side_port())
        self.l2bus.mem_side.bind(self.l2cache.cpu_side)
        self.l2cache.mem_side.bind(self.memctrl.port)

    def _add_fs_devices(self) -> None:
        uart = Uart("uart", self)
        rtc = Rtc("rtc", self)
        power = PowerController("power", self)
        self.devices = [uart, rtc, power]
        self.kernel = MiniKernel(uart, power)

    # ------------------------------------------------------------------
    # workload binding
    # ------------------------------------------------------------------
    def set_se_workload(self, program: Program,
                        process_name: str = "guest") -> Process:
        """Bind an SE-mode process built from ``program``."""
        if self.config.mode != "se":
            raise ValueError("set_se_workload requires an SE-mode system")
        process = Process(process_name, program, self.config.mem_size)
        process.load(self.memctrl.memory)
        self.process = process
        for cpu in self.cpus:
            cpu.bind(self, process)
        return process

    def set_fs_workload(self, program: Program) -> None:
        """Load an FS-mode kernel image and point the CPU at its entry."""
        if self.config.mode != "fs":
            raise ValueError("set_fs_workload requires an FS-mode system")
        addr = program.base
        for word in program.words:
            self.memctrl.memory.write(addr, 4, word)
            addr += 4
        self.cpu.bind(self, None)
        self.cpu.regs.pc = program.entry
        self.cpu.regs.write_int(2, self.config.mem_size - 16)  # sp

    def device_at(self, addr: int):
        """Device mapped at guest address ``addr``, or None."""
        for device in self.devices:
            if device.contains(addr):
                return device
        return None


@dataclass
class SimResult:
    """Outcome of one g5 simulation."""

    exit_cause: str
    sim_ticks: int
    sim_insts: int
    sim_cycles: int
    stats: dict[str, float]
    recorder: ExecutionRecorder
    console: str = ""
    exit_code: int = 0
    #: Sharding counters (:meth:`repro.g5.sharded.ShardedEngine.
    #: describe`); ``None`` for single-queue runs.
    sharding: Optional[dict] = None
    #: Ownership-sanitizer report (:meth:`repro.g5.sanitize.
    #: OwnershipSanitizer.describe`); ``None`` unless sanitize=True.
    sanitize: Optional[dict] = None

    @property
    def sim_seconds(self) -> float:
        return ticks_to_seconds(self.sim_ticks)

    @property
    def ipc(self) -> float:
        return self.sim_insts / max(1, self.sim_cycles)


def simulate(system: System, max_ticks: Optional[int] = None) -> SimResult:
    """Run the system to completion (gem5's ``m5.simulate``)."""
    system.cpu.activate()
    exit_event = system.eventq.run(max_tick=max_ticks)
    stats = dump_stats(system)
    console = ""
    exit_code = 0
    if system.process is not None:
        console = system.process.console_text
        exit_code = system.process.exit_code or 0
    elif system.kernel is not None:
        console = system.kernel.console_text
    return SimResult(
        exit_cause=exit_event.cause,
        sim_ticks=system.eventq.now,
        sim_insts=sum(int(cpu.stat_committed.value())
                      for cpu in system.cpus),
        sim_cycles=int(system.cpu.stat_cycles.value()),
        stats=stats,
        recorder=system.recorder,
        console=console,
        exit_code=exit_code,
        sharding=(system.sharded.describe()
                  if system.sharded is not None else None),
        sanitize=(system.sanitizer.describe()
                  if system.sanitizer is not None else None),
    )
