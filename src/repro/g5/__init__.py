"""repro.g5 — the gem5-like architectural simulator.

The simulator that the rest of the library *profiles*: an event-driven
full-system/SE machine simulator with four CPU models (Atomic, Timing,
Minor, O3), classic caches, and a small RISC guest ISA.
"""

from .cpus import (
    CPU_MODELS,
    AtomicSimpleCPU,
    BaseCPU,
    MinorCPU,
    O3CPU,
    TimingSimpleCPU,
)
from .isa import Assembler, Decoder, Program, StaticInst
from .mem import Cache, CacheParams, CoherentXBar, MemCtrl
from .pseudo import PseudoOpHandler
from .se import Process
from .serialize import Checkpoint, restore_checkpoint, take_checkpoint
from .stats import dump_stats
from .statsfile import load_stats, parse_stats, save_stats, write_stats
from .system import DEFAULT_MEM_SIZE, SimConfig, SimResult, System, simulate

__all__ = [
    "Assembler",
    "AtomicSimpleCPU",
    "BaseCPU",
    "CPU_MODELS",
    "Cache",
    "Checkpoint",
    "CacheParams",
    "CoherentXBar",
    "DEFAULT_MEM_SIZE",
    "Decoder",
    "MemCtrl",
    "MinorCPU",
    "O3CPU",
    "Process",
    "Program",
    "PseudoOpHandler",
    "SimConfig",
    "SimResult",
    "StaticInst",
    "System",
    "TimingSimpleCPU",
    "dump_stats",
    "load_stats",
    "parse_stats",
    "restore_checkpoint",
    "save_stats",
    "simulate",
    "take_checkpoint",
    "write_stats",
]
