"""Parallel, disk-cached experiment execution (see DESIGN.md).

The scaling backbone under :class:`~repro.experiments.runner.
ExperimentRunner`: content-addressed result caching
(:mod:`~repro.exec.cache`, :mod:`~repro.exec.keys`), a cost-model-
scheduled process pool (:mod:`~repro.exec.pool`,
:mod:`~repro.exec.costmodel`), and progress reporting
(:mod:`~repro.exec.progress`).
"""

from .cache import CacheEntry, ResultCache, default_cache_dir
from .costmodel import CostModel
from .keys import (
    CacheKey,
    g5_key,
    host_fingerprint,
    host_key,
    sample_fingerprint,
    sim_fingerprint,
    spec_key,
    window_key,
)
from .pool import EngineStats, ExecutionEngine, G5Job, execute_g5_job
from .progress import NullReporter, ProgressReporter
from .windows import WindowsCancelled, resolve_windows

__all__ = [
    "CacheEntry",
    "CacheKey",
    "CostModel",
    "EngineStats",
    "ExecutionEngine",
    "G5Job",
    "NullReporter",
    "ProgressReporter",
    "ResultCache",
    "WindowsCancelled",
    "default_cache_dir",
    "execute_g5_job",
    "g5_key",
    "host_fingerprint",
    "host_key",
    "resolve_windows",
    "sample_fingerprint",
    "sim_fingerprint",
    "spec_key",
    "window_key",
]
