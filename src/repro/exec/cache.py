"""Content-addressed on-disk result cache.

Layout (under the cache root, default ``~/.cache/repro-g5`` or
``$REPRO_CACHE_DIR``)::

    objects/<digest[:2]>/<digest>.pkl    # one pickled envelope per entry
    costs.json                           # cost-model history (see costmodel)

Each envelope records the entry kind (``g5`` / ``host`` / ``spec`` /
``sample`` / ``window``), the
human-readable key document, and the payload.  Writes are atomic
(temp file + ``os.replace``) so a crashed run can never leave a partial
entry behind; unreadable or wrong-format entries are treated as misses
and deleted, which doubles as the format-migration path.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Union

from .keys import CacheKey

#: Envelope format version; entries with any other version are misses.
ENVELOPE_VERSION = 1

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-g5``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-g5"


@dataclass(frozen=True)
class CacheEntry:
    """One stored result, as listed by ``repro-g5 cache list``."""

    digest: str
    kind: str
    describe: dict
    size_bytes: int

    @property
    def label(self) -> str:
        d = self.describe
        if self.kind == "g5":
            return (f"g5 {d.get('cpu_model')}/{d.get('workload')} "
                    f"({d.get('mode')}, {d.get('scale')})")
        if self.kind == "host":
            g5 = d.get("g5_describe", {})
            platform = d.get("platform") or {}
            name = platform.get("name") if isinstance(platform, dict) else "?"
            return (f"host {g5.get('cpu_model')}/{g5.get('workload')} "
                    f"on {name}")
        if self.kind == "spec":
            platform = d.get("platform") or {}
            name = platform.get("name") if isinstance(platform, dict) else "?"
            return f"spec {d.get('spec')} on {name}"
        if self.kind == "sample":
            return (f"sample {d.get('cpu_model')}/{d.get('workload')} "
                    f"({d.get('scale')}, int {d.get('interval_insts')}, "
                    f"seed {d.get('seed')})")
        if self.kind == "window":
            return (f"window {d.get('cpu_model')}/{d.get('workload')} "
                    f"({d.get('scale')}, interval {d.get('interval')}, "
                    f"ckpt {str(d.get('ckpt_digest'))[:12]})")
        if self.kind == "lint":
            passes = d.get("passes") or []
            return (f"lint {d.get('relpath')} ({len(passes)} pass"
                    f"{'es' if len(passes) != 1 else ''})")
        return self.kind


class ResultCache:
    """Content-addressed pickle store with atomic writes."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self._objects = self.root / "objects"

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def _path(self, digest: str) -> Path:
        return self._objects / digest[:2] / f"{digest}.pkl"

    @property
    def costs_path(self) -> Path:
        return self.root / "costs.json"

    # ------------------------------------------------------------------
    # store / fetch
    # ------------------------------------------------------------------
    def get(self, key: CacheKey) -> Optional[object]:
        """The stored payload for ``key``, or None on any kind of miss."""
        path = self._path(key.digest)
        try:
            with open(path, "rb") as handle:
                envelope = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            # Corrupt or unreadable entry: drop it and report a miss.
            path.unlink(missing_ok=True)
            return None
        if (not isinstance(envelope, dict)
                or envelope.get("version") != ENVELOPE_VERSION
                or envelope.get("digest") != key.digest):
            path.unlink(missing_ok=True)
            return None
        return envelope["payload"]

    def put(self, key: CacheKey, payload: object) -> None:
        """Atomically store ``payload`` under ``key``."""
        envelope = {
            "version": ENVELOPE_VERSION,
            "digest": key.digest,
            "kind": key.kind,
            "describe": key.describe,
            "payload": payload,
        }
        path = self._path(key.digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(envelope, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __contains__(self, key: CacheKey) -> bool:
        return self._path(key.digest).exists()

    # ------------------------------------------------------------------
    # raw envelope transport (the fleet's shared-store wire format)
    # ------------------------------------------------------------------
    def raw_get(self, digest: str) -> Optional[bytes]:
        """The stored envelope's raw bytes, verified against ``digest``.

        This is what one worker ships another over the shared-store
        HTTP endpoint: the receiver re-verifies with :meth:`raw_put`,
        so a corrupt entry can never propagate through the fleet.
        """
        path = self._path(digest)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        if self.verify_envelope(digest, blob) is None:
            path.unlink(missing_ok=True)
            return None
        return blob

    def raw_put(self, digest: str, blob: bytes) -> bool:
        """Store a serialized envelope received from a peer.

        The blob is verified before anything touches the disk: it must
        unpickle to a current-version envelope whose recorded digest
        matches the addressed one.  Returns False (and stores nothing)
        on any mismatch.
        """
        if self.verify_envelope(digest, blob) is None:
            return False
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return True

    @staticmethod
    def verify_envelope(digest: str, blob: bytes) -> Optional[dict]:
        """The decoded envelope if ``blob`` is a valid entry for
        ``digest``, else None."""
        try:
            envelope = pickle.loads(blob)
        except Exception:
            return None
        if (not isinstance(envelope, dict)
                or envelope.get("version") != ENVELOPE_VERSION
                or envelope.get("digest") != digest):
            return None
        return envelope

    # ------------------------------------------------------------------
    # inspection / maintenance
    # ------------------------------------------------------------------
    def entries(self) -> Iterator[CacheEntry]:
        """Yield every readable entry (unreadable ones are skipped)."""
        if not self._objects.is_dir():
            return
        for path in sorted(self._objects.rglob("*.pkl")):
            try:
                with open(path, "rb") as handle:
                    envelope = pickle.load(handle)
                if envelope.get("version") != ENVELOPE_VERSION:
                    continue
            except Exception:
                continue
            yield CacheEntry(
                digest=envelope["digest"],
                kind=envelope["kind"],
                describe=envelope["describe"],
                size_bytes=path.stat().st_size,
            )

    def stats(self) -> dict[str, int]:
        """Entry counts by kind plus total size in bytes."""
        counts: dict[str, int] = {"total_bytes": 0, "entries": 0}
        for entry in self.entries():
            counts[entry.kind] = counts.get(entry.kind, 0) + 1
            counts["entries"] += 1
            counts["total_bytes"] += entry.size_bytes
        return counts

    def prune(self, max_bytes: int) -> tuple[int, int]:
        """Evict oldest entries until the store fits in ``max_bytes``.

        Age is the entry file's mtime — a disk hit does not refresh it,
        so this is FIFO-by-write rather than LRU, which is the right
        policy for a content-addressed store: old entries are the ones
        most likely keyed by superseded code fingerprints.  Ties break
        on the path so concurrent pruners pick the same victims.
        Returns ``(entries_removed, bytes_freed)``.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        if not self._objects.is_dir():
            return (0, 0)
        entries: list[tuple[float, str, int, Path]] = []
        total = 0
        for path in self._objects.rglob("*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue  # deleted underneath us (concurrent prune)
            entries.append((stat.st_mtime, str(path), stat.st_size, path))
            total += stat.st_size
        entries.sort()
        removed = 0
        freed = 0
        for _, _, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            removed += 1
            freed += size
        return (removed, freed)

    def clear(self, kind: Optional[str] = None) -> int:
        """Delete entries (all, or one kind); returns the count removed."""
        removed = 0
        if not self._objects.is_dir():
            return removed
        for path in list(self._objects.rglob("*.pkl")):
            if kind is not None:
                try:
                    with open(path, "rb") as handle:
                        envelope = pickle.load(handle)
                    if envelope.get("kind") != kind:
                        continue
                except Exception:
                    pass  # unreadable entries go regardless of kind
            path.unlink(missing_ok=True)
            removed += 1
        return removed
