"""Predicting g5 simulation cost to schedule longest jobs first.

Fanning a heterogeneous experiment matrix over a worker pool suffers
from stragglers: an O3 full-system boot takes an order of magnitude
longer than an Atomic microbenchmark, and if it starts last the pool
idles behind it.  Longest-processing-time-first scheduling needs only a
*relative* duration estimate, which simulation time supplies readily
(Gem5Pred makes the same observation at much larger scale): cost scales
with the CPU model's per-instruction work, the workload's scale, and the
mode's device overhead.

The model starts from static weights and then learns: every completed
run feeds an exponential moving average per (workload, cpu, mode, scale)
class, persisted as ``costs.json`` in the cache directory, so the second
experiment campaign schedules from measured durations.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover
    from .pool import G5Job

#: Relative per-instruction simulation work by CPU model (the paper's
#: Table/Fig. ordering: detail costs time).
CPU_MODEL_WEIGHT = {"atomic": 1.0, "timing": 2.2, "minor": 4.5, "o3": 7.5}

#: Relative guest work by workload scale.
SCALE_WEIGHT = {"test": 1.0, "simsmall": 6.0, "simmedium": 20.0}

#: FS mode adds device and kernel events on top of the CPU work.
MODE_WEIGHT = {"se": 1.0, "fs": 1.6}

#: EMA smoothing for observed durations.
EMA_ALPHA = 0.5


def job_class(job: "G5Job") -> str:
    """The history bucket a job's duration is learned under."""
    return f"{job.workload}|{job.cpu_model}|{job.mode}|{job.scale}"


class CostModel:
    """Relative-duration oracle with optional persisted history."""

    def __init__(self,
                 history_path: Union[str, Path, None] = None) -> None:
        self.history_path = (Path(history_path)
                             if history_path is not None else None)
        self._history: dict[str, float] = {}
        self._load()

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _load(self) -> None:
        if self.history_path is None:
            return
        try:
            data = json.loads(self.history_path.read_text())
            if isinstance(data, dict):
                self._history = {str(k): float(v)
                                 for k, v in data.items()}
        except (OSError, ValueError):
            self._history = {}

    def _save(self) -> None:
        if self.history_path is None:
            return
        try:
            self.history_path.parent.mkdir(parents=True, exist_ok=True)
            self.history_path.write_text(
                json.dumps(self._history, sort_keys=True, indent=1))
        except OSError:
            pass  # history is an optimisation; never fail a run over it

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def static_weight(self, job: "G5Job") -> float:
        """Prior relative cost from model/scale/mode weights alone."""
        return (CPU_MODEL_WEIGHT.get(job.cpu_model, 4.0)
                * SCALE_WEIGHT.get(job.scale, 6.0)
                * MODE_WEIGHT.get(job.mode, 1.0))

    def predict(self, job: "G5Job") -> float:
        """Predicted duration (seconds-ish; only the ordering matters)."""
        learned = self._history.get(job_class(job))
        if learned is not None:
            return learned
        return self.static_weight(job) * 0.01

    def observe(self, job: "G5Job", seconds: float) -> None:
        """Fold one measured duration into the per-class EMA."""
        key = job_class(job)
        previous = self._history.get(key)
        if previous is None:
            self._history[key] = seconds
        else:
            self._history[key] = (EMA_ALPHA * seconds
                                  + (1.0 - EMA_ALPHA) * previous)

    def flush(self) -> None:
        """Persist the learned durations (best effort)."""
        self._save()

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, jobs: Sequence["G5Job"]) -> list["G5Job"]:
        """Jobs ordered predicted-longest-first (LPT minimises makespan).

        Ties break on the job's stable sort key so the order — and hence
        worker assignment — is deterministic run to run.
        """
        return sorted(jobs,
                      key=lambda j: (-self.predict(j), j.sort_key()))

    def known_classes(self) -> dict[str, float]:
        """The learned history (for cache inspection)."""
        return dict(self._history)


def load_cost_model(history_path: Optional[Path]) -> CostModel:
    """Cost model backed by ``history_path`` (None = in-memory only)."""
    return CostModel(history_path)
