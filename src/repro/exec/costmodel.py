"""Predicting g5 simulation cost to schedule longest jobs first.

Fanning a heterogeneous experiment matrix over a worker pool suffers
from stragglers: an O3 full-system boot takes an order of magnitude
longer than an Atomic microbenchmark, and if it starts last the pool
idles behind it.  Longest-processing-time-first scheduling needs only a
*relative* duration estimate, which simulation time supplies readily
(Gem5Pred makes the same observation at much larger scale): cost scales
with the CPU model's per-instruction work, the workload's scale, and the
mode's device overhead.

The model learns at three granularities.  Every completed run feeds an
exponential moving average for its exact (workload, cpu, mode, scale)
class — the sharpest predictor once a class has been seen.  The same
observation also lands in a bounded raw-observation history that trains
a Gem5Pred-style **learned predictor**: a pure-python ridge regression
over job features (cpu model, mode, scale, workload, cores,
interval/warmup parameters) against log-seconds, so classes *never run
before* get a prediction shaped by everything the machine has run, not
just a single scalar.  Finally each observation calibrates a global
*seconds-per-weight-unit* factor — the fallback when the regression is
underfed (fewer than :data:`MIN_TRAINING_OBSERVATIONS` samples).

Prediction resolves through those layers in sharpness order: exact
class EMA, then the learned regression, then the static prior scaled by
the machine calibration.  All layers persist as ``costs.json`` (schema
v3) in the cache directory; v2 files (no observation history) and v1
files (a flat class -> seconds map) load transparently.

Jobs can shape their own treatment through two optional attributes:
``cost_class`` overrides the history bucket (sampled jobs form their
own class per workload/model/scale) and ``cost_weight_factor`` scales
the static prior (a sampled run costs a fraction of the full detailed
run it replaces).
"""

from __future__ import annotations

import hashlib
import json
import math
from pathlib import Path
from typing import Any, Optional, Sequence, Union

#: Relative per-instruction simulation work by CPU model (the paper's
#: Table/Fig. ordering: detail costs time).
CPU_MODEL_WEIGHT = {"atomic": 1.0, "timing": 2.2, "minor": 4.5, "o3": 7.5}

#: Relative guest work by workload scale.
SCALE_WEIGHT = {"test": 1.0, "simsmall": 6.0, "simmedium": 20.0,
                "simlarge": 60.0}

#: FS mode adds device and kernel events on top of the CPU work.
MODE_WEIGHT = {"se": 1.0, "fs": 1.6}

#: Per-extra-core overhead: total simulated work stays about constant
#: (the guest splits it), but coherence probes, barrier spins, and the
#: extra per-core event streams all cost host time.
CORES_WEIGHT_FACTOR = 0.2

#: EMA smoothing for observed durations and the calibration factor.
EMA_ALPHA = 0.5

#: Seconds one static weight unit costs before any run has calibrated
#: the machine (chosen so priors land in the right order of magnitude).
DEFAULT_SEC_PER_WEIGHT = 0.01

#: On-disk schema version of ``costs.json``.
COSTS_SCHEMA_VERSION = 3

#: Raw observations retained for regression training (most recent kept).
OBSERVATION_CAP = 512

#: Below this many observations the regression stays untrained and
#: prediction falls back to the EMA / calibrated-prior layers.
MIN_TRAINING_OBSERVATIONS = 12

#: Ridge penalty keeping the tiny normal-equation solve well-posed.
RIDGE_LAMBDA = 1e-2

#: Workload names hash into this many one-hot feature buckets.
WORKLOAD_BUCKETS = 8

#: Durations are learned in log space; clamp to keep log() finite.
MIN_SECONDS = 1e-6


def job_class(job: Any) -> str:
    """The history bucket a job's duration is learned under.

    Jobs may claim a bucket explicitly via a ``cost_class`` attribute
    (sampled jobs do, so their partial runs never contaminate the
    full-run history of the same workload).
    """
    explicit = getattr(job, "cost_class", None)
    if explicit is not None:
        return str(explicit)
    base = f"{job.workload}|{job.cpu_model}|{job.mode}|{job.scale}"
    cores = int(getattr(job, "cores", 1) or 1)
    if cores > 1:
        # Multi-core runs cost differently (coherence traffic, spin
        # waits) — keep their history out of the single-core bucket.
        base += f"|c{cores}"
    return base


def _workload_bucket(workload: str) -> int:
    """Deterministic hash bucket for a workload name (stable across
    processes — ``hash()`` is salted, sha256 is not)."""
    digest = hashlib.sha256(str(workload).encode()).hexdigest()
    return int(digest, 16) % WORKLOAD_BUCKETS


#: CPU models with their own one-hot feature slot.
_CPU_FEATURE_MODELS = ("atomic", "timing", "minor", "o3")

#: Observation-dict fields, in persistence order (schema v3).
OBSERVATION_FIELDS = ("class", "workload", "cpu_model", "mode", "scale",
                      "cores", "interval_insts", "warmup_insts",
                      "weight_factor", "seconds")


def observation_from_job(job: Any, seconds: float) -> dict:
    """The JSON-safe record one completed run contributes to training."""
    return {
        "class": job_class(job),
        "workload": str(job.workload),
        "cpu_model": str(job.cpu_model),
        "mode": str(getattr(job, "mode", "se")),
        "scale": str(job.scale),
        "cores": int(getattr(job, "cores", 1) or 1),
        "interval_insts": int(getattr(job, "interval_insts", 0) or 0),
        "warmup_insts": int(getattr(job, "warmup_insts", 0) or 0),
        "weight_factor": float(getattr(job, "cost_weight_factor", 1.0)),
        "seconds": float(seconds),
    }


def observation_features(obs: dict) -> list[float]:
    """The regression feature vector for one observation record.

    Training (from persisted history) and prediction (from a live job
    via :func:`observation_from_job`) share this one encoding, so the
    two can never drift apart.
    """
    cpu = obs.get("cpu_model", "")
    features = [1.0]                                    # bias
    features.extend(1.0 if cpu == model else 0.0
                    for model in _CPU_FEATURE_MODELS)
    features.append(1.0 if obs.get("mode") == "fs" else 0.0)
    features.append(math.log(SCALE_WEIGHT.get(obs.get("scale"), 6.0)))
    features.append(math.log(max(1, int(obs.get("cores", 1) or 1))))
    features.append(math.log(max(MIN_SECONDS,
                                 float(obs.get("weight_factor", 1.0)))))
    interval = int(obs.get("interval_insts", 0) or 0)
    warmup = int(obs.get("warmup_insts", 0) or 0)
    features.append(1.0 if interval else 0.0)           # sampled job
    features.append(math.log1p(interval))
    features.append(math.log1p(warmup))
    bucket = _workload_bucket(obs.get("workload", ""))
    features.extend(1.0 if bucket == i else 0.0
                    for i in range(WORKLOAD_BUCKETS))
    return features


def _solve(matrix: list[list[float]], rhs: list[float]) -> list[float]:
    """Gaussian elimination with partial pivoting (tiny dense system)."""
    n = len(rhs)
    aug = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(aug[r][col]))
        if abs(aug[pivot][col]) < 1e-12:
            raise ArithmeticError("singular normal equations")
        aug[col], aug[pivot] = aug[pivot], aug[col]
        inv = 1.0 / aug[col][col]
        for row in range(col + 1, n):
            factor = aug[row][col] * inv
            if factor == 0.0:
                continue
            for k in range(col, n + 1):
                aug[row][k] -= factor * aug[col][k]
    weights = [0.0] * n
    for row in range(n - 1, -1, -1):
        acc = aug[row][n]
        for k in range(row + 1, n):
            acc -= aug[row][k] * weights[k]
        weights[row] = acc / aug[row][row]
    return weights


class LearnedPredictor:
    """Ridge regression over job features -> log(seconds) (Gem5Pred).

    Pure python: the normal equations ``(X'X + lambda I) w = X'y`` are
    assembled and solved directly — the feature space is ~20-dimensional
    and the observation history is bounded, so this trains in well under
    a millisecond, cheap enough to refresh continuously as runs finish.
    """

    def __init__(self, weights: Sequence[float],
                 n_observations: int) -> None:
        self.weights = list(weights)
        self.n_observations = n_observations

    @classmethod
    def train(cls, observations: Sequence[dict]
              ) -> Optional["LearnedPredictor"]:
        """Fit from observation records; None while underfed."""
        rows = [obs for obs in observations
                if float(obs.get("seconds", 0.0)) > 0.0]
        if len(rows) < MIN_TRAINING_OBSERVATIONS:
            return None
        dim = len(observation_features(rows[0]))
        xtx = [[0.0] * dim for _ in range(dim)]
        xty = [0.0] * dim
        for obs in rows:
            x = observation_features(obs)
            y = math.log(max(MIN_SECONDS, float(obs["seconds"])))
            for i in range(dim):
                xi = x[i]
                if xi == 0.0:
                    continue
                xty[i] += xi * y
                row = xtx[i]
                for j in range(dim):
                    row[j] += xi * x[j]
        for i in range(1, dim):        # leave the bias unpenalised
            xtx[i][i] += RIDGE_LAMBDA
        xtx[0][0] += 1e-9
        try:
            weights = _solve(xtx, xty)
        except ArithmeticError:
            return None
        return cls(weights, len(rows))

    def predict_seconds(self, obs: dict) -> float:
        """Predicted duration for one observation-shaped record."""
        x = observation_features(obs)
        log_seconds = sum(w * xi for w, xi in zip(self.weights, x))
        # Clamp the exponent so a degenerate fit cannot overflow.
        return math.exp(min(50.0, max(-50.0, log_seconds)))

    def predict_job(self, job: Any) -> float:
        return self.predict_seconds(observation_from_job(job, 0.0))


class CostModel:
    """Relative-duration oracle with optional persisted history."""

    def __init__(self,
                 history_path: Union[str, Path, None] = None) -> None:
        self.history_path = (Path(history_path)
                             if history_path is not None else None)
        self._history: dict[str, float] = {}
        self._sec_per_weight: Optional[float] = None
        self._calibration_samples = 0
        self._observations: list[dict] = []
        self._predictor: Optional[LearnedPredictor] = None
        self._predictor_stale = True
        self._load()

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _load(self) -> None:
        if self.history_path is None:
            return
        try:
            data = json.loads(self.history_path.read_text())
        except (OSError, ValueError):
            return
        if not isinstance(data, dict):
            return
        # v3 is v2 plus the raw-observation history, so one loader
        # covers both; a v2 file simply starts with no training data.
        if data.get("version") in (2, COSTS_SCHEMA_VERSION):
            classes = data.get("classes")
            if isinstance(classes, dict):
                self._history = {str(k): float(v)
                                 for k, v in classes.items()}
            spw = data.get("sec_per_weight")
            if isinstance(spw, (int, float)) and spw > 0:
                self._sec_per_weight = float(spw)
            samples = data.get("calibration_samples")
            if isinstance(samples, int) and samples >= 0:
                self._calibration_samples = samples
            observations = data.get("observations")
            if isinstance(observations, list):
                self._observations = [
                    obs for obs in observations
                    if isinstance(obs, dict) and "seconds" in obs
                ][-OBSERVATION_CAP:]
        elif "version" not in data:
            # Legacy v1 layout: a flat class -> seconds map.
            try:
                self._history = {str(k): float(v)
                                 for k, v in data.items()}
            except (TypeError, ValueError):
                self._history = {}

    def _save(self) -> None:
        if self.history_path is None:
            return
        doc = {
            "version": COSTS_SCHEMA_VERSION,
            "classes": self._history,
            "sec_per_weight": self._sec_per_weight,
            "calibration_samples": self._calibration_samples,
            "observations": self._observations,
        }
        try:
            self.history_path.parent.mkdir(parents=True, exist_ok=True)
            self.history_path.write_text(
                json.dumps(doc, sort_keys=True, indent=1))
        except OSError:
            pass  # history is an optimisation; never fail a run over it

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def static_weight(self, job: Any) -> float:
        """Prior relative cost from model/scale/mode weights alone.

        A job's ``cost_weight_factor`` (when present) scales the prior —
        sampled jobs advertise the fraction of a full detailed run they
        expect to cost.
        """
        weight = (CPU_MODEL_WEIGHT.get(job.cpu_model, 4.0)
                  * SCALE_WEIGHT.get(job.scale, 6.0)
                  * MODE_WEIGHT.get(getattr(job, "mode", "se"), 1.0))
        cores = int(getattr(job, "cores", 1) or 1)
        if cores > 1:
            weight *= 1.0 + CORES_WEIGHT_FACTOR * (cores - 1)
        return weight * float(getattr(job, "cost_weight_factor", 1.0))

    @property
    def sec_per_weight(self) -> float:
        """Calibrated seconds per static weight unit (default prior)."""
        if self._sec_per_weight is not None:
            return self._sec_per_weight
        return DEFAULT_SEC_PER_WEIGHT

    @property
    def calibration_samples(self) -> int:
        """How many observed runs have fed the calibration factor."""
        return self._calibration_samples

    @property
    def predictor(self) -> Optional[LearnedPredictor]:
        """The trained regression, refreshed lazily after new data.

        None while the observation history is underfed (fewer than
        :data:`MIN_TRAINING_OBSERVATIONS` runs) — callers fall back to
        the EMA/calibration layers, as :meth:`predict` does.
        """
        if self._predictor_stale:
            self._predictor = LearnedPredictor.train(self._observations)
            self._predictor_stale = False
        return self._predictor

    def predict_learned(self, job: Any) -> Optional[float]:
        """The regression's estimate alone (None while underfed)."""
        predictor = self.predictor
        if predictor is None:
            return None
        return predictor.predict_job(job)

    def predict(self, job: Any) -> float:
        """Predicted duration (seconds-ish; only the ordering matters).

        Layers, sharpest first: a class that has run before answers
        from its own EMA (deterministic simulations repeat their
        durations almost exactly); an unseen class answers from the
        learned regression once it has trained; until then the static
        weight scaled by the machine-wide calibration stands in.
        """
        learned = self._history.get(job_class(job))
        if learned is not None:
            return learned
        regressed = self.predict_learned(job)
        if regressed is not None:
            return regressed
        return self.static_weight(job) * self.sec_per_weight

    def observe(self, job: Any, seconds: float) -> None:
        """Fold one measured duration into every learning layer."""
        self._observations.append(observation_from_job(job, seconds))
        if len(self._observations) > OBSERVATION_CAP:
            del self._observations[:-OBSERVATION_CAP]
        self._predictor_stale = True
        key = job_class(job)
        previous = self._history.get(key)
        if previous is None:
            self._history[key] = seconds
        else:
            self._history[key] = (EMA_ALPHA * seconds
                                  + (1.0 - EMA_ALPHA) * previous)
        ratio = seconds / max(1e-9, self.static_weight(job))
        if self._sec_per_weight is None:
            self._sec_per_weight = ratio
        else:
            self._sec_per_weight = (EMA_ALPHA * ratio
                                    + (1.0 - EMA_ALPHA)
                                    * self._sec_per_weight)
        self._calibration_samples += 1

    def flush(self) -> None:
        """Persist the learned durations (best effort)."""
        self._save()

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, jobs: Sequence[Any]) -> list[Any]:
        """Jobs ordered predicted-longest-first (LPT minimises makespan).

        Ties break on the job's stable sort key so the order — and hence
        worker assignment — is deterministic run to run.
        """
        return sorted(jobs,
                      key=lambda j: (-self.predict(j), j.sort_key()))

    def known_classes(self) -> dict[str, float]:
        """The learned history (for cache inspection)."""
        return dict(self._history)

    def observations(self) -> list[dict]:
        """The raw training history (for the capacity report)."""
        return [dict(obs) for obs in self._observations]


def ema_baseline_predict(history: dict[str, float],
                         sec_per_weight: float, obs: dict) -> float:
    """What CostModel v2 would have predicted for one observation.

    The accuracy tests and the capacity report use this as the
    pre-regression baseline: exact-class EMA when seen, otherwise the
    static prior scaled by the machine calibration.
    """
    job = _ObservationJob(obs)
    learned = history.get(job_class(job))
    if learned is not None:
        return learned
    model = CostModel()
    model._sec_per_weight = sec_per_weight
    return model.static_weight(job) * sec_per_weight


class _ObservationJob:
    """Adapts an observation record to the job attribute protocol."""

    def __init__(self, obs: dict) -> None:
        if obs.get("class"):
            self.cost_class = obs["class"]
        self.workload = obs.get("workload", "")
        self.cpu_model = obs.get("cpu_model", "")
        self.mode = obs.get("mode", "se")
        self.scale = obs.get("scale", "test")
        self.cores = int(obs.get("cores", 1) or 1)
        self.interval_insts = int(obs.get("interval_insts", 0) or 0)
        self.warmup_insts = int(obs.get("warmup_insts", 0) or 0)
        self.cost_weight_factor = float(obs.get("weight_factor", 1.0))


def load_cost_model(history_path: Optional[Path]) -> CostModel:
    """Cost model backed by ``history_path`` (None = in-memory only)."""
    return CostModel(history_path)
