"""Predicting g5 simulation cost to schedule longest jobs first.

Fanning a heterogeneous experiment matrix over a worker pool suffers
from stragglers: an O3 full-system boot takes an order of magnitude
longer than an Atomic microbenchmark, and if it starts last the pool
idles behind it.  Longest-processing-time-first scheduling needs only a
*relative* duration estimate, which simulation time supplies readily
(Gem5Pred makes the same observation at much larger scale): cost scales
with the CPU model's per-instruction work, the workload's scale, and the
mode's device overhead.

The model learns at two granularities.  Every completed run feeds an
exponential moving average for its exact (workload, cpu, mode, scale)
class — the sharpest predictor once a class has been seen.  The same
observation also calibrates a global *seconds-per-weight-unit* factor,
so classes never run before still benefit: their static prior is scaled
by how fast this machine actually turned out to be.  Both layers
persist as ``costs.json`` (schema v2) in the cache directory; v1 files
(a flat class -> seconds map) load transparently.

Jobs can shape their own treatment through two optional attributes:
``cost_class`` overrides the history bucket (sampled jobs form their
own class per workload/model/scale) and ``cost_weight_factor`` scales
the static prior (a sampled run costs a fraction of the full detailed
run it replaces).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional, Sequence, Union

#: Relative per-instruction simulation work by CPU model (the paper's
#: Table/Fig. ordering: detail costs time).
CPU_MODEL_WEIGHT = {"atomic": 1.0, "timing": 2.2, "minor": 4.5, "o3": 7.5}

#: Relative guest work by workload scale.
SCALE_WEIGHT = {"test": 1.0, "simsmall": 6.0, "simmedium": 20.0,
                "simlarge": 60.0}

#: FS mode adds device and kernel events on top of the CPU work.
MODE_WEIGHT = {"se": 1.0, "fs": 1.6}

#: Per-extra-core overhead: total simulated work stays about constant
#: (the guest splits it), but coherence probes, barrier spins, and the
#: extra per-core event streams all cost host time.
CORES_WEIGHT_FACTOR = 0.2

#: EMA smoothing for observed durations and the calibration factor.
EMA_ALPHA = 0.5

#: Seconds one static weight unit costs before any run has calibrated
#: the machine (chosen so priors land in the right order of magnitude).
DEFAULT_SEC_PER_WEIGHT = 0.01

#: On-disk schema version of ``costs.json``.
COSTS_SCHEMA_VERSION = 2


def job_class(job: Any) -> str:
    """The history bucket a job's duration is learned under.

    Jobs may claim a bucket explicitly via a ``cost_class`` attribute
    (sampled jobs do, so their partial runs never contaminate the
    full-run history of the same workload).
    """
    explicit = getattr(job, "cost_class", None)
    if explicit is not None:
        return str(explicit)
    base = f"{job.workload}|{job.cpu_model}|{job.mode}|{job.scale}"
    cores = int(getattr(job, "cores", 1) or 1)
    if cores > 1:
        # Multi-core runs cost differently (coherence traffic, spin
        # waits) — keep their history out of the single-core bucket.
        base += f"|c{cores}"
    return base


class CostModel:
    """Relative-duration oracle with optional persisted history."""

    def __init__(self,
                 history_path: Union[str, Path, None] = None) -> None:
        self.history_path = (Path(history_path)
                             if history_path is not None else None)
        self._history: dict[str, float] = {}
        self._sec_per_weight: Optional[float] = None
        self._calibration_samples = 0
        self._load()

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _load(self) -> None:
        if self.history_path is None:
            return
        try:
            data = json.loads(self.history_path.read_text())
        except (OSError, ValueError):
            return
        if not isinstance(data, dict):
            return
        if data.get("version") == COSTS_SCHEMA_VERSION:
            classes = data.get("classes")
            if isinstance(classes, dict):
                self._history = {str(k): float(v)
                                 for k, v in classes.items()}
            spw = data.get("sec_per_weight")
            if isinstance(spw, (int, float)) and spw > 0:
                self._sec_per_weight = float(spw)
            samples = data.get("calibration_samples")
            if isinstance(samples, int) and samples >= 0:
                self._calibration_samples = samples
        elif "version" not in data:
            # Legacy v1 layout: a flat class -> seconds map.
            try:
                self._history = {str(k): float(v)
                                 for k, v in data.items()}
            except (TypeError, ValueError):
                self._history = {}

    def _save(self) -> None:
        if self.history_path is None:
            return
        doc = {
            "version": COSTS_SCHEMA_VERSION,
            "classes": self._history,
            "sec_per_weight": self._sec_per_weight,
            "calibration_samples": self._calibration_samples,
        }
        try:
            self.history_path.parent.mkdir(parents=True, exist_ok=True)
            self.history_path.write_text(
                json.dumps(doc, sort_keys=True, indent=1))
        except OSError:
            pass  # history is an optimisation; never fail a run over it

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def static_weight(self, job: Any) -> float:
        """Prior relative cost from model/scale/mode weights alone.

        A job's ``cost_weight_factor`` (when present) scales the prior —
        sampled jobs advertise the fraction of a full detailed run they
        expect to cost.
        """
        weight = (CPU_MODEL_WEIGHT.get(job.cpu_model, 4.0)
                  * SCALE_WEIGHT.get(job.scale, 6.0)
                  * MODE_WEIGHT.get(getattr(job, "mode", "se"), 1.0))
        cores = int(getattr(job, "cores", 1) or 1)
        if cores > 1:
            weight *= 1.0 + CORES_WEIGHT_FACTOR * (cores - 1)
        return weight * float(getattr(job, "cost_weight_factor", 1.0))

    @property
    def sec_per_weight(self) -> float:
        """Calibrated seconds per static weight unit (default prior)."""
        if self._sec_per_weight is not None:
            return self._sec_per_weight
        return DEFAULT_SEC_PER_WEIGHT

    @property
    def calibration_samples(self) -> int:
        """How many observed runs have fed the calibration factor."""
        return self._calibration_samples

    def predict(self, job: Any) -> float:
        """Predicted duration (seconds-ish; only the ordering matters).

        A class that has run before answers from its own EMA; an unseen
        class answers from its static weight scaled by the machine-wide
        calibration every observed run has contributed to.
        """
        learned = self._history.get(job_class(job))
        if learned is not None:
            return learned
        return self.static_weight(job) * self.sec_per_weight

    def observe(self, job: Any, seconds: float) -> None:
        """Fold one measured duration into both learning layers."""
        key = job_class(job)
        previous = self._history.get(key)
        if previous is None:
            self._history[key] = seconds
        else:
            self._history[key] = (EMA_ALPHA * seconds
                                  + (1.0 - EMA_ALPHA) * previous)
        ratio = seconds / max(1e-9, self.static_weight(job))
        if self._sec_per_weight is None:
            self._sec_per_weight = ratio
        else:
            self._sec_per_weight = (EMA_ALPHA * ratio
                                    + (1.0 - EMA_ALPHA)
                                    * self._sec_per_weight)
        self._calibration_samples += 1

    def flush(self) -> None:
        """Persist the learned durations (best effort)."""
        self._save()

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, jobs: Sequence[Any]) -> list[Any]:
        """Jobs ordered predicted-longest-first (LPT minimises makespan).

        Ties break on the job's stable sort key so the order — and hence
        worker assignment — is deterministic run to run.
        """
        return sorted(jobs,
                      key=lambda j: (-self.predict(j), j.sort_key()))

    def known_classes(self) -> dict[str, float]:
        """The learned history (for cache inspection)."""
        return dict(self._history)


def load_cost_model(history_path: Optional[Path]) -> CostModel:
    """Cost model backed by ``history_path`` (None = in-memory only)."""
    return CostModel(history_path)
