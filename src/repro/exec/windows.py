"""Pool fan-out for SimPoint window measurements.

:func:`resolve_windows` is the parallel counterpart of the sequential
measurement loop in :func:`repro.sample.orchestrate.execute_sampled_job`:
given a :class:`~repro.sample.parallel.SamplePlan` it resolves every
planned window through the same three layers the g5 engine uses —
content-addressed disk cache, cost-model-scheduled
``ProcessPoolExecutor``, inline execution when the pool would not help —
and returns the measurements **in plan order**, never completion order.
Merging stays bit-exact because ordering is decided by the plan, not by
which worker finished first.

Each window ships to its worker as plain picklable state (the
checkpoint, the window geometry, the workload name); the worker rebuilds
the guest program from the registry and measures exactly as the inline
path does.  Simulation is deterministic, so a window's packed
measurement is bit-identical whether it came from a worker, the disk
cache, or an inline run.

Cancellation: ``should_abort`` is polled between completions.  When it
fires, unstarted windows are cancelled, in-flight ones are abandoned to
the pool shutdown, and :class:`WindowsCancelled` reports how far the
fan-out got — the serve scheduler uses this to drain mid-fan-out without
publishing a partial payload.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Optional

from .cache import ResultCache
from .costmodel import CostModel

#: Poll interval for the abort check while windows are in flight.
_ABORT_POLL_SECONDS = 0.05


class WindowsCancelled(RuntimeError):
    """A window fan-out was aborted before every window resolved."""

    def __init__(self, label: str, completed: int, cancelled: int) -> None:
        super().__init__(
            f"sampled run {label} cancelled mid-fan-out: "
            f"{completed} windows resolved, {cancelled} abandoned")
        self.label = label
        self.completed = completed
        self.cancelled = cancelled


def _window_worker(doc: dict) -> tuple[dict, float]:
    """Process-pool entry point: measure one window from its checkpoint.

    Receives only picklable state and rebuilds the guest program from
    the workload registry — the same deterministic build the planning
    process ran, so the measurement matches the inline path bit for bit.
    """
    from ..sample.measure import measure_from_checkpoint
    from ..sample.parallel import pack_measurement
    from ..workloads import get_workload

    start = time.perf_counter()
    program = get_workload(doc["workload"]).build(doc["scale"])
    measurement = measure_from_checkpoint(
        doc["checkpoint"], program, doc["workload"], doc["cpu_model"],
        interval=doc["interval"], length=doc["length"],
        pre_insts=doc["pre_insts"], domains=doc.get("domains", 1))
    return pack_measurement(measurement), time.perf_counter() - start


def resolve_windows(job, plan, *, jobs: int = 1,
                    cache: Optional[ResultCache] = None,
                    cost_model: Optional[CostModel] = None,
                    stats=None,
                    should_abort: Optional[Callable[[], bool]] = None
                    ) -> list:
    """Resolve every planned window; return measurements in plan order.

    ``stats`` is an :class:`~repro.exec.pool.EngineStats` (or None);
    window work lands in its dedicated ``windows_executed`` /
    ``window_hits`` counters so job-level accounting stays untouched.
    """
    from ..sample.parallel import unpack_measurement

    window_jobs = plan.window_jobs()
    total = len(window_jobs)
    results: dict[int, object] = {}     # plan index -> IntervalMeasurement
    misses: list = []
    indices: dict = {}                  # WindowJob -> plan index
    for index, wjob in enumerate(window_jobs):
        indices[wjob] = index
        cached = unpack_measurement(cache.get(wjob.cache_key())) \
            if cache is not None else None
        if cached is not None:
            results[index] = cached
            if stats is not None:
                stats.note_window_hit()
        else:
            misses.append(wjob)

    if cost_model is not None:
        ordered = cost_model.schedule(misses)
    else:
        ordered = sorted(misses, key=lambda w: (-w.total_insts,
                                                w.sort_key()))

    def abort_requested() -> bool:
        return should_abort is not None and should_abort()

    def worker_doc(wjob) -> dict:
        window = plan.windows[indices[wjob]]
        return {
            "workload": wjob.workload,
            "cpu_model": wjob.cpu_model,
            "scale": wjob.scale,
            "interval": wjob.interval,
            "length": wjob.length,
            "pre_insts": wjob.pre_insts,
            "domains": wjob.domains,
            "checkpoint": plan.checkpoints[window.warm_start],
        }

    def record(wjob, packed: dict, seconds: float) -> None:
        if cache is not None:
            cache.put(wjob.cache_key(), packed)
        if cost_model is not None:
            cost_model.observe(wjob, seconds)
        if stats is not None:
            stats.note_window_execution(wjob.label, seconds)
        results[indices[wjob]] = unpack_measurement(packed)

    def abort() -> None:
        raise WindowsCancelled(job.label, len(results),
                               total - len(results))

    workers = min(jobs, len(ordered))
    if workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pending = {pool.submit(_window_worker, worker_doc(wjob)): wjob
                       for wjob in ordered}
            while pending:
                if abort_requested():
                    for future in pending:
                        future.cancel()
                    pool.shutdown(wait=False, cancel_futures=True)
                    abort()
                done, _ = wait(pending, timeout=_ABORT_POLL_SECONDS,
                               return_when=FIRST_COMPLETED)
                for future in done:
                    wjob = pending.pop(future)
                    packed, seconds = future.result()
                    record(wjob, packed, seconds)
    else:
        for wjob in ordered:
            if abort_requested():
                abort()
            packed, seconds = _window_worker(worker_doc(wjob))
            record(wjob, packed, seconds)

    if cost_model is not None:
        cost_model.flush()
    return [results[index] for index in range(total)]
