"""Progress reporting for experiment batches.

The executor runs minutes-long batches; this gives the user a line per
event on stderr (so stdout stays clean for figure output) plus an
end-of-batch summary.  ``NullReporter`` silences everything and is the
library default — only the CLI turns reporting on.

Reporters are thread-safe: the serve daemon's worker threads may call
``job_done`` concurrently, so the done-counter increment and the line
emission happen under one lock (which also keeps interleaved output
whole).
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Optional, TextIO


class ProgressReporter:
    """Prints one line per job event and a batch summary."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._total = 0
        self._done = 0
        self._started_at: Optional[float] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # batch lifecycle
    # ------------------------------------------------------------------
    def batch_start(self, total: int, hits: int, workers: int) -> None:
        with self._lock:
            self._total = total
            self._done = 0
            self._started_at = time.perf_counter()
            if total == 0:
                self._line(f"all {hits} g5 result(s) cached; "
                           f"nothing to run")
            else:
                self._line(f"running {total} g5 simulation(s) on "
                           f"{workers} worker(s) ({hits} cache hit(s))")

    def job_done(self, label: str, seconds: float,
                 source: str = "run") -> None:
        with self._lock:
            self._done += 1
            self._line(f"[{self._done}/{self._total}] {label} "
                       f"({source}, {seconds:.2f}s)")

    def batch_end(self) -> None:
        with self._lock:
            if self._started_at is None or self._total == 0:
                return
            elapsed = time.perf_counter() - self._started_at
            self._line(f"batch complete: {self._total} run(s) in "
                       f"{elapsed:.2f}s")
            self._started_at = None

    # ------------------------------------------------------------------
    def _line(self, text: str) -> None:
        print(f"[exec] {text}", file=self.stream, flush=True)


class NullReporter(ProgressReporter):
    """Reporter that says nothing (the library default)."""

    def __init__(self) -> None:
        super().__init__(stream=None)

    def _line(self, text: str) -> None:
        pass
