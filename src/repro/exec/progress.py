"""Progress reporting for experiment batches.

The executor runs minutes-long batches; this gives the user a line per
event on stderr (so stdout stays clean for figure output) plus an
end-of-batch summary.  ``NullReporter`` silences everything and is the
library default — only the CLI turns reporting on.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO


class ProgressReporter:
    """Prints one line per job event and a batch summary."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._total = 0
        self._done = 0
        self._started_at: Optional[float] = None

    # ------------------------------------------------------------------
    # batch lifecycle
    # ------------------------------------------------------------------
    def batch_start(self, total: int, hits: int, workers: int) -> None:
        self._total = total
        self._done = 0
        self._started_at = time.perf_counter()
        if total == 0:
            self._line(f"all {hits} g5 result(s) cached; nothing to run")
        else:
            self._line(f"running {total} g5 simulation(s) on {workers} "
                       f"worker(s) ({hits} cache hit(s))")

    def job_done(self, label: str, seconds: float,
                 source: str = "run") -> None:
        self._done += 1
        self._line(f"[{self._done}/{self._total}] {label} "
                   f"({source}, {seconds:.2f}s)")

    def batch_end(self) -> None:
        if self._started_at is None or self._total == 0:
            return
        elapsed = time.perf_counter() - self._started_at
        self._line(f"batch complete: {self._total} run(s) in {elapsed:.2f}s")
        self._started_at = None

    # ------------------------------------------------------------------
    def _line(self, text: str) -> None:
        print(f"[exec] {text}", file=self.stream, flush=True)


class NullReporter(ProgressReporter):
    """Reporter that says nothing (the library default)."""

    def __init__(self) -> None:
        super().__init__(stream=None)

    def _line(self, text: str) -> None:
        pass
