"""The parallel, disk-cached g5 execution engine.

One :class:`G5Job` names one g5 simulation — ``(workload, cpu_model,
mode, scale)`` plus an optional non-default :class:`SimConfig`.  The
engine resolves each job through three layers:

1. the content-addressed disk cache (:mod:`repro.exec.cache`), keyed by
   config + workload + code fingerprint;
2. for misses, a ``ProcessPoolExecutor`` fan-out across ``jobs`` workers,
   scheduled predicted-longest-first (:mod:`repro.exec.costmodel`) so
   the O3/FS stragglers start immediately;
3. inline execution when the pool would not help (one worker, or a
   single miss).

Workers return *packed* results (plain builtins, see
:mod:`repro.g5.serialize`), which is also the cache value format — so
a result is bit-identical whether it came from a worker, the disk, or
an inline run.  Simulation is deterministic, so executing a job twice
can never produce two different cache values.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..g5.serialize import pack_sim_result, unpack_sim_result
from ..g5.system import SimConfig, SimResult, System, simulate
from ..workloads.registry import get_workload
from .cache import ResultCache
from .costmodel import CostModel
from .keys import CacheKey, g5_key
from .progress import NullReporter, ProgressReporter


@dataclass(frozen=True)
class G5Job:
    """One g5 simulation the engine can execute or fetch."""

    workload: str
    cpu_model: str
    mode: str
    scale: str
    sim_config: Optional[SimConfig] = None
    #: Guest thread count for workloads with a threaded variant; the
    #: default system gets one core per thread.
    threads: int = 1

    @property
    def cores(self) -> int:
        """Simulated core count (feeds the cost model's class/weight)."""
        if self.sim_config is not None:
            return self.sim_config.cores
        return max(1, self.threads)

    @property
    def label(self) -> str:
        base = f"{self.cpu_model}/{self.workload}"
        if self.threads > 1:
            base += f" x{self.threads}"
        return f"{base} ({self.mode}, {self.scale})"

    def sort_key(self) -> tuple:
        return (self.workload, self.cpu_model, self.mode, self.scale,
                self.threads)

    def cache_key(self) -> CacheKey:
        return g5_key(self.workload, self.cpu_model, self.mode, self.scale,
                      self.sim_config, threads=self.threads)


def execute_g5_job(job: G5Job) -> SimResult:
    """Run one g5 simulation to completion (no caching)."""
    spec = get_workload(job.workload)
    program = spec.build(job.scale, threads=job.threads)
    if job.sim_config is not None:
        config = job.sim_config
    else:
        config = SimConfig(cpu_model=job.cpu_model, mode=job.mode,
                           cores=max(1, job.threads))
    system = System(config)
    if job.mode == "se":
        system.set_se_workload(program, process_name=job.workload)
    else:
        system.set_fs_workload(program)
    return simulate(system)


def _pool_worker(job: G5Job) -> tuple[dict, float]:
    """Process-pool entry point: run a job, return (packed result, secs)."""
    start = time.perf_counter()
    result = execute_g5_job(job)
    return pack_sim_result(result), time.perf_counter() - start


@dataclass
class EngineStats:
    """What the engine actually did, for summaries and the smoke test.

    Counters mutate through the ``note_*`` methods, which take an
    internal lock — the serve daemon's worker threads record into one
    shared instance concurrently, and ``/metrics`` scrapes it from yet
    another thread.  Direct field reads stay cheap for the single-
    threaded CLI paths.
    """

    executed: int = 0        # simulations actually run (pool or inline)
    disk_hits: int = 0       # results served from the on-disk cache
    executed_seconds: float = 0.0
    windows_executed: int = 0  # sampled windows measured (pool or inline)
    window_hits: int = 0       # windows served from the on-disk cache
    window_seconds: float = 0.0
    sharded_runs: int = 0          # simulations executed with domains > 1
    domain_windows: int = 0        # quantum windows across sharded runs
    boundary_deliveries: int = 0   # cross-domain packet deliveries
    by_label: dict = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def note_execution(self, label: str, seconds: float) -> None:
        """Record one completed simulation (thread-safe)."""
        with self._lock:
            self.executed += 1
            self.executed_seconds += seconds
            self.by_label[label] = round(seconds, 3)

    def note_window_execution(self, label: str, seconds: float) -> None:
        """Record one measured sampled window (thread-safe).

        Windows are sub-jobs of a sampled run, so they get their own
        counters — ``executed`` keeps meaning whole jobs.
        """
        with self._lock:
            self.windows_executed += 1
            self.window_seconds += seconds
            self.by_label[label] = round(seconds, 3)

    def note_window_hit(self, count: int = 1) -> None:
        """Record windows served from the on-disk cache (thread-safe)."""
        with self._lock:
            self.window_hits += count

    def note_executed_batch(self, count: int,
                            seconds: float = 0.0) -> None:
        """Fold in executions counted elsewhere (e.g. a nested runner)."""
        with self._lock:
            self.executed += count
            self.executed_seconds += seconds

    def note_disk_hit(self, count: int = 1) -> None:
        """Record results served from the on-disk cache (thread-safe)."""
        with self._lock:
            self.disk_hits += count

    def note_sharded_run(self, sharding: Optional[dict]) -> None:
        """Fold in one executed simulation's sharding counters.

        ``sharding`` is :attr:`~repro.g5.system.SimResult.sharding`
        (``None`` for single-queue runs, which keeps this a no-op on
        the default path).
        """
        if not sharding:
            return
        with self._lock:
            self.sharded_runs += 1
            self.domain_windows += int(sharding.get("windows", 0))
            self.boundary_deliveries += int(sharding.get("deliveries", 0))

    def as_dict(self) -> dict[str, float]:
        with self._lock:
            return {"g5_executed": self.executed,
                    "g5_disk_hits": self.disk_hits,
                    "g5_executed_seconds": round(self.executed_seconds, 3),
                    "windows_executed": self.windows_executed,
                    "window_hits": self.window_hits,
                    "window_seconds": round(self.window_seconds, 3),
                    "sharded_runs": self.sharded_runs,
                    "domain_windows": self.domain_windows,
                    "boundary_deliveries": self.boundary_deliveries}


class ExecutionEngine:
    """Resolves G5Jobs through cache layers and a worker pool."""

    def __init__(self, jobs: int = 1,
                 cache: Optional[ResultCache] = None,
                 cost_model: Optional[CostModel] = None,
                 progress: Optional[ProgressReporter] = None) -> None:
        if jobs < 1:
            raise ValueError(f"need at least one worker, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        if cost_model is None:
            history = cache.costs_path if cache is not None else None
            cost_model = CostModel(history)
        self.cost_model = cost_model
        self.progress = progress if progress is not None else NullReporter()
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    # single job
    # ------------------------------------------------------------------
    def run(self, job: G5Job) -> SimResult:
        """Resolve one job: disk cache, then inline execution."""
        key = job.cache_key()
        cached = self._fetch(key)
        if cached is not None:
            return cached
        return self._execute_inline(job, key)

    def run_sampled(self, job) -> dict:
        """Resolve one :class:`~repro.sample.SampledJob` payload.

        Same cache discipline as :meth:`run` — the content-addressed key
        covers the sampling configuration and the sampling code, so a
        repeat run is a pure disk hit.  Observed wall time feeds the
        cost model under the job's own ``cost_class``, keeping sampled
        timings out of the full-run history.

        With more than one worker the measurement windows fan out
        through the process pool (:mod:`repro.exec.windows`), each as
        its own content-addressed cache entry; the merged payload is
        byte-identical to the sequential path's.
        """
        from ..sample.orchestrate import execute_sampled_job
        from ..sample.parallel import (exact_payload, merge_measurements,
                                       plan_sampled_job)
        from .windows import resolve_windows

        key = job.cache_key()
        if self.cache is not None:
            payload = self.cache.get(key)
            if isinstance(payload, dict) and payload.get("kind") == "sample":
                self.stats.note_disk_hit()
                return payload
        start = time.perf_counter()
        if self.jobs > 1:
            plan = plan_sampled_job(job)
            if plan.exact:
                payload = exact_payload(job, plan.profile)
            else:
                measurements = resolve_windows(
                    job, plan, jobs=self.jobs, cache=self.cache,
                    cost_model=self.cost_model, stats=self.stats)
                payload = merge_measurements(job, plan, measurements)
        else:
            payload = execute_sampled_job(job)
        seconds = time.perf_counter() - start
        self._store(key, payload)
        self._record(job, seconds)
        self.progress.job_done(job.label, seconds)
        self.cost_model.flush()
        return payload

    # ------------------------------------------------------------------
    # batches
    # ------------------------------------------------------------------
    def run_batch(self, jobs: Iterable[G5Job]) -> dict[G5Job, SimResult]:
        """Resolve a job set, fanning cache misses across the pool.

        Duplicate jobs collapse to one execution.  Results come back for
        every requested job regardless of how each was satisfied.
        """
        unique = list(dict.fromkeys(jobs))
        results: dict[G5Job, SimResult] = {}
        misses: list[G5Job] = []
        keys: dict[G5Job, CacheKey] = {}
        for job in unique:
            key = job.cache_key()
            keys[job] = key
            cached = self._fetch(key)
            if cached is not None:
                results[job] = cached
            else:
                misses.append(job)
        ordered = self.cost_model.schedule(misses)
        workers = min(self.jobs, len(ordered))
        self.progress.batch_start(len(ordered), len(results), max(1, workers))
        if workers > 1:
            self._execute_pool(ordered, keys, results, workers)
        else:
            for job in ordered:
                results[job] = self._execute_inline(job, keys[job])
        self.cost_model.flush()
        self.progress.batch_end()
        return results

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _fetch(self, key: CacheKey) -> Optional[SimResult]:
        if self.cache is None:
            return None
        payload = self.cache.get(key)
        if payload is None:
            return None
        try:
            result = unpack_sim_result(payload)
        except Exception:
            return None
        self.stats.note_disk_hit()
        return result

    def _store(self, key: CacheKey, packed: dict) -> None:
        if self.cache is not None:
            self.cache.put(key, packed)

    def _record(self, job: G5Job, seconds: float) -> None:
        self.stats.note_execution(job.label, seconds)
        self.cost_model.observe(job, seconds)

    def _execute_inline(self, job: G5Job, key: CacheKey) -> SimResult:
        start = time.perf_counter()
        result = execute_g5_job(job)
        seconds = time.perf_counter() - start
        self._store(key, pack_sim_result(result))
        self._record(job, seconds)
        self.stats.note_sharded_run(result.sharding)
        self.progress.job_done(job.label, seconds)
        return result

    def _execute_pool(self, ordered: list[G5Job],
                      keys: dict[G5Job, CacheKey],
                      results: dict[G5Job, SimResult],
                      workers: int) -> None:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pending = {pool.submit(_pool_worker, job): job
                       for job in ordered}
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    job = pending.pop(future)
                    packed, seconds = future.result()
                    self._store(keys[job], packed)
                    self._record(job, seconds)
                    results[job] = unpack_sim_result(packed)
                    self.stats.note_sharded_run(results[job].sharding)
                    self.progress.job_done(job.label, seconds)
