"""Content-addressed cache keys for experiment artifacts.

A cached result is only reusable when *everything* that determined it is
unchanged: the simulated-machine configuration, the workload build
parameters, the replay knobs, and the simulator code itself.  Each key
is the SHA-256 of a canonical JSON document naming all of those inputs;
the code contribution is a fingerprint over the source bytes of the
packages whose behaviour feeds the result, so editing any model
invalidates exactly the artifacts it can affect.

Two fingerprints are used:

- ``sim_fingerprint`` — ``repro.events`` + ``repro.g5`` +
  ``repro.workloads``: everything that determines a g5 simulation.
- ``host_fingerprint`` — the above plus ``repro.host`` + ``repro.core``:
  everything that additionally determines a host replay.
- ``sample_fingerprint`` — the simulation packages plus
  ``repro.analysis`` + ``repro.sample``: a sampled result additionally
  depends on the CFG block identification and the sampling pipeline.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from functools import lru_cache
from pathlib import Path
from typing import Any, Optional

#: Bump when the key schema itself changes (forces a cold cache).
KEY_SCHEMA_VERSION = 1

#: Package directories (relative to the repro package root) hashed into
#: the simulation-side and host-side code fingerprints.
SIM_CODE_PACKAGES = ("events", "g5", "workloads")
HOST_CODE_PACKAGES = SIM_CODE_PACKAGES + ("host", "core")
SAMPLE_CODE_PACKAGES = SIM_CODE_PACKAGES + ("analysis", "sample")


def _package_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


@lru_cache(maxsize=None)
def _fingerprint(packages: tuple[str, ...]) -> str:
    """SHA-256 over the source bytes of the named repro subpackages."""
    digest = hashlib.sha256()
    root = _package_root()
    for package in packages:
        base = root / package
        for path in sorted(base.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
    return digest.hexdigest()


def sim_fingerprint() -> str:
    """Code version of everything that determines a g5 simulation."""
    return _fingerprint(SIM_CODE_PACKAGES)


def host_fingerprint() -> str:
    """Code version of everything that determines a host replay."""
    return _fingerprint(HOST_CODE_PACKAGES)


def sample_fingerprint() -> str:
    """Code version of everything that determines a sampled simulation."""
    return _fingerprint(SAMPLE_CODE_PACKAGES)


def canonical(value: Any) -> Any:
    """Reduce a key component to JSON-encodable builtins, recursively.

    Dataclasses flatten to ``{"__type__": name, ...fields}`` so two
    different config types with identical fields never collide; enums
    reduce to their value.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        doc = {"__type__": type(value).__name__}
        for field in dataclasses.fields(value):
            doc[field.name] = canonical(getattr(value, field.name))
        return doc
    if hasattr(value, "value") and type(value).__module__ != "builtins":
        # Enum members (HugePagePolicy etc.).
        return canonical(value.value)
    if isinstance(value, dict):
        return {str(k): canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot canonicalise {type(value).__name__} for a "
                    f"cache key: {value!r}")


@dataclasses.dataclass(frozen=True)
class CacheKey:
    """A content hash plus the human-readable document it hashes."""

    kind: str                 # "g5" | "host" | "spec" | "sample" | "window"
    digest: str
    describe: dict

    @property
    def short(self) -> str:
        return self.digest[:12]


def _make_key(kind: str, document: dict) -> CacheKey:
    document = {"schema": KEY_SCHEMA_VERSION, "kind": kind,
                **canonical(document)}
    blob = json.dumps(document, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(blob.encode()).hexdigest()
    return CacheKey(kind=kind, digest=digest, describe=document)


def g5_key(workload: str, cpu_model: str, mode: str, scale: str,
           sim_config: Any = None, threads: int = 1) -> CacheKey:
    """Key of one g5 simulation result (stats + recorded trace).

    ``threads`` is the guest thread count the workload was built with;
    the simulated core count rides in through ``sim_config`` (the
    ``cores`` field of the canonicalised dataclass), so a 1-core and a
    4-core run of the same workload never share a digest.
    """
    return _make_key("g5", {
        "code": sim_fingerprint(),
        "workload": workload,
        "cpu_model": cpu_model,
        "mode": mode,
        "scale": scale,
        "threads": threads,
        "sim_config": sim_config,
    })


def host_key(g5: CacheKey, platform: Any, opt_level: int, hugepages: Any,
             contention: Any, layout_quality: float, roi_only: bool,
             max_records: Optional[int]) -> CacheKey:
    """Key of one host replay of a g5 trace on one platform config."""
    return _make_key("host", {
        "code": host_fingerprint(),
        "g5": g5.digest,
        "g5_describe": g5.describe,
        "platform": platform,
        "opt_level": opt_level,
        "hugepages": hugepages,
        "contention": contention,
        "layout_quality": layout_quality,
        "roi_only": roi_only,
        "max_records": max_records,
    })


def sample_key(workload: str, cpu_model: str, scale: str,
               interval_insts: int, warmup_insts: int, k: int,
               max_k: int, seed: int, mode: str = "se",
               domains: int = 1) -> CacheKey:
    """Key of one sampled-simulation payload (repro.sample)."""
    return _make_key("sample", {
        "code": sample_fingerprint(),
        "workload": workload,
        "cpu_model": cpu_model,
        "mode": mode,
        "scale": scale,
        "interval_insts": interval_insts,
        "warmup_insts": warmup_insts,
        "k": k,
        "max_k": max_k,
        "seed": seed,
        "domains": domains,
    })


def window_key(workload: str, cpu_model: str, scale: str, interval: int,
               start_inst: int, length: int, pre_insts: int,
               ckpt_digest: str, mode: str = "se",
               domains: int = 1) -> CacheKey:
    """Key of one measured SimPoint window (repro.sample.parallel).

    The checkpoint *content* digest is part of the key — two windows at
    the same index whose restore points differ (different profile, an
    edited checkpoint, a changed functional model) must never share an
    entry, while two sampled jobs that plan the same window from the
    same state always do.
    """
    return _make_key("window", {
        "code": sample_fingerprint(),
        "workload": workload,
        "cpu_model": cpu_model,
        "mode": mode,
        "scale": scale,
        "interval": interval,
        "start_inst": start_inst,
        "length": length,
        "pre_insts": pre_insts,
        "ckpt_digest": ckpt_digest,
        "domains": domains,
    })


def spec_key(spec_name: str, platform: Any, n_records: int) -> CacheKey:
    """Key of one SPEC synthetic replay on one platform."""
    return _make_key("spec", {
        "code": host_fingerprint(),
        "spec": spec_name,
        "platform": platform,
        "n_records": n_records,
    })
