"""Worker membership: registration, heartbeats, and digest routing.

The registry is the coordinator's single source of truth about the
fleet.  Workers register with their base URL, then heartbeat with a
small load report (queue depth, capacity); a worker whose last
heartbeat is older than the timeout is swept to ``dead`` and its jobs
become re-routable.

Routing uses **rendezvous (highest-random-weight) hashing** over the
live workers: every (digest, worker) pair gets a deterministic score
and the job goes to the top scorer.  Identical jobs therefore always
land on the same worker while it lives — which is what keeps request
coalescing *global* — and when a worker dies only its digests move,
each to its second-choice worker, instead of the wholesale reshuffle a
modulo scheme would cause.

Liveness is measured on the monotonic clock (``serve.clock``), never
wall time, so an NTP step cannot kill a healthy fleet.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Optional

from ..serve import clock

__all__ = ["WorkerInfo", "WorkerRegistry", "rendezvous_score"]

#: Worker lifecycle states.
UP = "up"
DRAINING = "draining"
DEAD = "dead"


def rendezvous_score(digest: str, worker_id: str) -> int:
    """Deterministic per-(digest, worker) weight for HRW hashing."""
    blob = f"{digest}:{worker_id}".encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


@dataclass
class WorkerInfo:
    """One registered worker daemon, as the coordinator sees it."""

    id: str
    url: str
    state: str = UP
    registered_at: float = 0.0
    last_heartbeat: float = 0.0
    queue_depth: int = 0
    max_queue: int = 0
    jobs_dispatched: int = 0
    jobs_completed: int = 0
    heartbeats: int = 0

    @property
    def routable(self) -> bool:
        """Whether new jobs may be sent to this worker."""
        return self.state == UP

    @property
    def saturated(self) -> bool:
        """Whether the worker reported a full admission queue."""
        return self.max_queue > 0 and self.queue_depth >= self.max_queue

    def status_doc(self) -> dict:
        return {
            "id": self.id,
            "url": self.url,
            "state": self.state,
            "queue_depth": self.queue_depth,
            "max_queue": self.max_queue,
            "jobs_dispatched": self.jobs_dispatched,
            "jobs_completed": self.jobs_completed,
            "heartbeats": self.heartbeats,
        }


class WorkerRegistry:
    """Thread-safe membership map with heartbeat-based liveness."""

    def __init__(self, heartbeat_timeout: float = 3.0) -> None:
        if heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive, got "
                             f"{heartbeat_timeout}")
        self.heartbeat_timeout = heartbeat_timeout
        self._lock = threading.Lock()
        self._workers: dict[str, WorkerInfo] = {}
        self._by_url: dict[str, str] = {}
        self._next_index = 0

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def register(self, url: str) -> WorkerInfo:
        """Admit a worker (idempotent per URL: re-registration after a
        restart revives the same id with a fresh heartbeat)."""
        url = url.rstrip("/")
        now = clock.monotonic()
        with self._lock:
            worker_id = self._by_url.get(url)
            if worker_id is None:
                self._next_index += 1
                worker_id = f"w{self._next_index}"
                self._by_url[url] = worker_id
            worker = WorkerInfo(id=worker_id, url=url,
                                registered_at=now, last_heartbeat=now)
            previous = self._workers.get(worker_id)
            if previous is not None:
                worker.jobs_dispatched = previous.jobs_dispatched
                worker.jobs_completed = previous.jobs_completed
            self._workers[worker_id] = worker
            return worker

    def heartbeat(self, worker_id: str,
                  report: Optional[dict] = None) -> Optional[WorkerInfo]:
        """Record a heartbeat; returns None for unknown workers (the
        worker should re-register).  A heartbeat from a ``dead`` worker
        revives it — the process was slow, not gone."""
        with self._lock:
            worker = self._workers.get(worker_id)
            if worker is None:
                return None
            worker.last_heartbeat = clock.monotonic()
            worker.heartbeats += 1
            if worker.state == DEAD:
                worker.state = UP
            if report:
                worker.queue_depth = int(report.get(
                    "queue_depth", worker.queue_depth))
                worker.max_queue = int(report.get(
                    "max_queue", worker.max_queue))
            return worker

    def drain(self, worker_id: str) -> Optional[WorkerInfo]:
        """Stop routing new jobs to a worker (it keeps finishing)."""
        with self._lock:
            worker = self._workers.get(worker_id)
            if worker is not None and worker.state == UP:
                worker.state = DRAINING
            return worker

    def get(self, worker_id: str) -> Optional[WorkerInfo]:
        with self._lock:
            return self._workers.get(worker_id)

    def workers(self) -> list[WorkerInfo]:
        """Every known worker, stable id order."""
        with self._lock:
            return sorted(self._workers.values(),
                          key=lambda w: int(w.id[1:]))

    def live_workers(self) -> list[WorkerInfo]:
        return [w for w in self.workers() if w.routable]

    # ------------------------------------------------------------------
    # liveness + routing
    # ------------------------------------------------------------------
    def sweep(self) -> list[WorkerInfo]:
        """Mark heartbeat-expired workers dead; returns the newly dead."""
        now = clock.monotonic()
        newly_dead = []
        with self._lock:
            for worker in self._workers.values():
                if worker.state == DEAD:
                    continue
                if now - worker.last_heartbeat > self.heartbeat_timeout:
                    worker.state = DEAD
                    newly_dead.append(worker)
        return newly_dead

    def route(self, digest: str,
              exclude: tuple[str, ...] = ()) -> Optional[WorkerInfo]:
        """The rendezvous-hash winner among routable workers.

        ``exclude`` skips workers that already failed this job, so a
        retry lands on the digest's next-choice worker deterministically.
        """
        candidates = [w for w in self.live_workers()
                      if w.id not in exclude]
        if not candidates:
            return None
        return max(candidates,
                   key=lambda w: (rendezvous_score(digest, w.id), w.id))

    def peers_doc(self) -> list[dict]:
        """The live peer list shipped to workers on every heartbeat
        (feeds each worker's shared-store read-through)."""
        return [{"id": w.id, "url": w.url} for w in self.live_workers()]
