"""The fleet coordinator: admission, routing, dispatch, and failover.

The coordinator accepts the same job documents as a single daemon and
farms them out to registered workers:

- **admission** — submissions are rejected (429 + Retry-After) when the
  pending set is full or every live worker reports a saturated queue
  (that is how worker-level backpressure propagates end to end), and
  503 while draining;
- **coalescing** — an in-flight digest absorbs identical submissions
  fleet-wide; combined with digest routing, N identical requests
  anywhere in the fleet cost one execution on one worker;
- **dispatch** — ``dispatchers`` threads claim the shortest-predicted
  pending job (the learned cost model's estimate), route it by digest
  through the registry's rendezvous hash, submit it to the worker over
  the ordinary :class:`~repro.serve.client.ServeClient`, and babysit it
  to completion;
- **failover** — a worker that refuses connections, 429s, or misses
  heartbeats gets its jobs requeued with that worker excluded, so the
  retry deterministically lands on the digest's next-choice worker;
  jobs fail only after ``max_job_attempts`` distinct attempts.

Executed durations reported by workers feed the coordinator's own
:class:`~repro.exec.costmodel.CostModel`, so routing estimates sharpen
as the fleet serves traffic.
"""

from __future__ import annotations

import threading
import urllib.error
from dataclasses import dataclass, field
from typing import Optional

from ..exec.costmodel import CostModel
from ..serve import clock
from ..serve.client import ServeClient, ServeError
from ..serve.jobs import (CANCELLED, DONE, FAILED, QUEUED,
                          JobRequestError, TERMINAL_STATES,
                          parse_job_request)
from ..serve.metrics import MetricsRegistry
from ..serve.scheduler import predict_request
from .registry import WorkerInfo, WorkerRegistry

__all__ = ["Coordinator", "CoordinatorConfig", "FleetJob"]

#: Coordinator-side job state between queued and terminal.
DISPATCHED = "dispatched"


@dataclass
class CoordinatorConfig:
    """Everything ``repro-g5 fleet coordinator`` can tune."""

    host: str = "127.0.0.1"
    port: int = 8090
    heartbeat_timeout: float = 3.0
    heartbeat_interval: float = 0.5
    max_pending: int = 256
    max_job_attempts: int = 3
    dispatchers: int = 8
    poll_interval: float = 0.2
    result_poll: float = 0.05
    job_timeout: float = 300.0
    cost_path = None  # costs.json path for the learned predictor
    quiet: bool = True
    log = None

    extra: dict = field(default_factory=dict)


@dataclass
class FleetJob:
    """One job tracked by the coordinator."""

    id: str
    doc: dict
    digest: str
    label: str
    predicted_seconds: float = 0.0
    state: str = QUEUED
    submitted_at: float = field(default_factory=clock.wall)
    finished_at: Optional[float] = None
    worker_id: Optional[str] = None
    remote_id: Optional[str] = None
    attempts: int = 0
    #: workers that already failed this job (excluded from re-routing)
    excluded: set = field(default_factory=set)
    source: Optional[str] = None
    result: Optional[dict] = None
    error: Optional[str] = None
    coalesced_into: Optional[str] = None
    waiters: list = field(default_factory=list)
    finished: threading.Event = field(default_factory=threading.Event,
                                      repr=False, compare=False)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def status_doc(self) -> dict:
        return {
            "id": self.id,
            "state": self.state,
            "label": self.label,
            "digest": self.digest,
            "predicted_seconds": round(self.predicted_seconds, 4),
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "worker": self.worker_id,
            "remote_id": self.remote_id,
            "attempts": self.attempts,
            "source": self.source,
            "error": self.error,
            "coalesced_into": self.coalesced_into,
            "waiters": list(self.waiters),
        }


class Coordinator:
    """Routing/admission brain; the HTTP layer delegates to this."""

    def __init__(self, config: CoordinatorConfig,
                 client_factory=None) -> None:
        self.config = config
        self.registry = WorkerRegistry(
            heartbeat_timeout=config.heartbeat_timeout)
        self.cost_model = CostModel(config.cost_path)
        self._client_factory = client_factory or (
            lambda url: ServeClient(url, timeout=30.0))
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._jobs: dict[str, FleetJob] = {}
        self._pending: list[str] = []
        self._inflight: dict[str, str] = {}   # digest -> primary job id
        self._next_job = 0
        self._draining = False
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._started_at = clock.wall()
        self._build_metrics()

    def _build_metrics(self) -> None:
        reg = MetricsRegistry()
        self.metrics_registry = reg
        self.m_submitted = reg.counter(
            "repro_fleet_jobs_submitted_total",
            "Jobs accepted by the coordinator")
        self.m_coalesced = reg.counter(
            "repro_fleet_jobs_coalesced_total",
            "Submissions coalesced onto an identical in-flight job")
        self.m_rejected = reg.counter(
            "repro_fleet_jobs_rejected_total",
            "Submissions rejected by admission control")
        self.m_completed = {
            state: reg.counter(
                "repro_fleet_jobs_completed_total",
                "Jobs reaching a terminal state, by state",
                labels={"state": state})
            for state in (DONE, FAILED, CANCELLED)}
        self.m_dispatches = reg.counter(
            "repro_fleet_dispatches_total",
            "Job dispatches to workers, including re-dispatches")
        self.m_redispatches = reg.counter(
            "repro_fleet_redispatches_total",
            "Jobs re-routed after a worker failure or rejection")
        self.m_worker_deaths = reg.counter(
            "repro_fleet_worker_deaths_total",
            "Workers declared dead by heartbeat timeout")
        reg.gauge("repro_fleet_jobs_pending",
                  "Jobs queued at the coordinator awaiting dispatch",
                  fn=lambda: len(self._pending))
        reg.gauge("repro_fleet_workers_live",
                  "Workers currently routable",
                  fn=lambda: len(self.registry.live_workers()))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        for index in range(self.config.dispatchers):
            thread = threading.Thread(
                target=self._dispatch_loop,
                name=f"fleet-dispatch-{index}", daemon=True)
            thread.start()
            self._threads.append(thread)
        monitor = threading.Thread(target=self._monitor_loop,
                                   name="fleet-monitor", daemon=True)
        monitor.start()
        self._threads.append(monitor)

    def stop(self, timeout: Optional[float] = 2.0) -> None:
        self._stop.set()
        with self._work:
            self._work.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads.clear()
        self.cost_model.flush()

    def drain(self) -> dict:
        """Stop admitting; cancel everything still queued."""
        with self._work:
            self._draining = True
            cancelled = []
            for job_id in list(self._pending):
                job = self._jobs[job_id]
                self._finish_locked(job, state=CANCELLED,
                                    error="coordinator draining")
                cancelled.append(job_id)
            self._pending.clear()
            dispatched = sum(1 for j in self._jobs.values()
                             if j.state == DISPATCHED)
            self._work.notify_all()
        return {"draining": True, "cancelled": len(cancelled),
                "dispatched_at_drain": dispatched}

    # ------------------------------------------------------------------
    # submissions
    # ------------------------------------------------------------------
    def submit_response(self, doc: object) -> tuple[int, dict, dict]:
        """(status, body, extra-headers) for ``POST /api/v1/jobs``."""
        try:
            request = parse_job_request(doc)
        except JobRequestError as exc:
            return 400, {"error": str(exc)}, {}
        digest = request.digest()
        predicted = predict_request(self.cost_model, request)
        with self._work:
            if self._draining:
                self.m_rejected.inc()
                return 503, {"error": "coordinator is draining",
                             "state": "rejected"}, {}
            primary_id = self._inflight.get(digest)
            if primary_id is not None:
                # Global coalescing: ride the identical in-flight job.
                job = self._new_job_locked(doc, digest, request.label,
                                           predicted)
                primary = self._jobs[primary_id]
                job.coalesced_into = primary_id
                primary.waiters.append(job.id)
                self.m_submitted.inc()
                self.m_coalesced.inc()
                return 202, self._ack_locked(job), {}
            code, headers = self._admission_locked(predicted)
            if code != 202:
                self.m_rejected.inc()
                body = {"error": headers.pop("X-Reject-Reason"),
                        "state": "rejected",
                        "pending": len(self._pending)}
                return code, body, headers
            job = self._new_job_locked(doc, digest, request.label,
                                       predicted)
            self._inflight[digest] = job.id
            self._pending.append(job.id)
            self.m_submitted.inc()
            self._work.notify()
            return 202, self._ack_locked(job), {}

    def _admission_locked(self, predicted: float) -> tuple[int, dict]:
        """Admission decision: 202, or 429 with a Retry-After hint."""
        live = self.registry.live_workers()
        if len(self._pending) >= self.config.max_pending:
            return 429, {"Retry-After": self._retry_after_locked(live),
                         "X-Reject-Reason":
                             f"pending queue is full "
                             f"({self.config.max_pending} jobs)"}
        if live and all(worker.saturated for worker in live):
            return 429, {"Retry-After": self._retry_after_locked(live),
                         "X-Reject-Reason":
                             "every worker reports a full queue"}
        return 202, {}

    def _retry_after_locked(self, live: list[WorkerInfo]) -> str:
        """Seconds until capacity should free up, from the predictor."""
        backlog = sum(self._jobs[job_id].predicted_seconds
                      for job_id in self._pending)
        drains = max(1, len(live))
        return str(max(1, round(backlog / drains)))

    def _new_job_locked(self, doc: dict, digest: str, label: str,
                        predicted: float) -> FleetJob:
        self._next_job += 1
        job = FleetJob(id=f"f{self._next_job}", doc=dict(doc),
                       digest=digest, label=label,
                       predicted_seconds=predicted)
        self._jobs[job.id] = job
        return job

    def _ack_locked(self, job: FleetJob) -> dict:
        return {"id": job.id, "state": job.state, "digest": job.digest,
                "coalesced_into": job.coalesced_into,
                "eta_seconds": round(job.predicted_seconds, 4),
                "pending": len(self._pending)}

    # ------------------------------------------------------------------
    # status / results
    # ------------------------------------------------------------------
    def get_job(self, job_id: str) -> Optional[FleetJob]:
        with self._lock:
            return self._jobs.get(job_id)

    def status_response(self, job_id: str) -> tuple[int, dict]:
        job = self.get_job(job_id)
        if job is None:
            return 404, {"error": f"unknown job {job_id!r}"}
        return 200, job.status_doc()

    def result_response(self, job_id: str) -> tuple[int, dict]:
        job = self.get_job(job_id)
        if job is None:
            return 404, {"error": f"unknown job {job_id!r}"}
        if job.state == DONE:
            return 200, {"id": job.id, "state": job.state,
                         "source": job.source, "result": job.result}
        if job.state == FAILED:
            return 500, {"id": job.id, "state": job.state,
                         "error": job.error}
        return 409, {"id": job.id, "state": job.state,
                     "error": f"job is {job.state}, not done"}

    def fleet_doc(self) -> dict:
        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            pending = len(self._pending)
        return {
            "uptime_seconds": round(clock.wall() - self._started_at, 3),
            "draining": self._draining,
            "workers": [w.status_doc() for w in self.registry.workers()],
            "jobs": states,
            "pending": pending,
            "predictor": {
                "observations": len(self.cost_model.observations()),
                "learned": self.cost_model.predictor is not None,
                "calibration_samples": self.cost_model.calibration_samples,
            },
        }

    def health_doc(self) -> dict:
        status = "draining" if self._draining else "ok"
        return {"status": status, "draining": self._draining,
                "workers_live": len(self.registry.live_workers())}

    # ------------------------------------------------------------------
    # worker control plane
    # ------------------------------------------------------------------
    def register_response(self, doc: object) -> tuple[int, dict]:
        if not isinstance(doc, dict) or not isinstance(doc.get("url"),
                                                       str):
            return 400, {"error": "registration needs a 'url' string"}
        worker = self.registry.register(doc["url"])
        self.registry.heartbeat(worker.id, doc.get("report") or {})
        self.log(f"worker {worker.id} registered at {worker.url}")
        with self._work:
            self._work.notify_all()
        return 200, {"id": worker.id,
                     "heartbeat_interval": self.config.heartbeat_interval,
                     "heartbeat_timeout": self.config.heartbeat_timeout,
                     "peers": self.registry.peers_doc()}

    def heartbeat_response(self, worker_id: str,
                           doc: object) -> tuple[int, dict]:
        report = doc if isinstance(doc, dict) else {}
        worker = self.registry.heartbeat(worker_id, report)
        if worker is None:
            return 404, {"error": f"unknown worker {worker_id!r}; "
                                  "re-register"}
        return 200, {"ok": True, "state": worker.state,
                     "peers": self.registry.peers_doc()}

    def worker_drain_response(self, worker_id: str) -> tuple[int, dict]:
        worker = self.registry.drain(worker_id)
        if worker is None:
            return 404, {"error": f"unknown worker {worker_id!r}"}
        return 200, {"id": worker.id, "state": worker.state}

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            job, worker = self._claim_next()
            if job is None:
                continue
            self._run_on_worker(job, worker)

    def _claim_next(self) -> tuple[Optional[FleetJob],
                                   Optional[WorkerInfo]]:
        """Shortest-predicted pending job that currently has a route."""
        with self._work:
            while not self._stop.is_set():
                routable = []
                for job_id in self._pending:
                    job = self._jobs[job_id]
                    worker = self.registry.route(job.digest,
                                                 exclude=tuple(
                                                     job.excluded))
                    if worker is not None and not worker.saturated:
                        routable.append((job.predicted_seconds,
                                         int(job.id[1:]), job, worker))
                if routable:
                    _, _, job, worker = min(routable,
                                            key=lambda t: t[:2])
                    self._pending.remove(job.id)
                    job.state = DISPATCHED
                    job.worker_id = worker.id
                    job.attempts += 1
                    worker.jobs_dispatched += 1
                    self.m_dispatches.inc()
                    return job, worker
                self._work.wait(timeout=self.config.poll_interval)
            return None, None

    def _run_on_worker(self, job: FleetJob, worker: WorkerInfo) -> None:
        """Submit one job to one worker and babysit it to a verdict."""
        client = self._client_factory(worker.url)
        try:
            ack = client.submit_doc(job.doc)
        except ServeError as exc:
            if exc.status == 429:
                # Worker backpressure: remember the saturation so
                # admission propagates it, and try another worker.
                self.registry.heartbeat(worker.id, {
                    "queue_depth": max(1, worker.max_queue),
                    "max_queue": max(1, worker.max_queue)})
                self._requeue(job, worker, exclude=False,
                              why="worker queue full",
                              count_attempt=False)
            else:
                self._fail(job, f"worker {worker.id} rejected job: "
                                f"{exc}")
            return
        except (urllib.error.URLError, OSError) as exc:
            self._requeue(job, worker, exclude=True,
                          why=f"connection failed: {exc}")
            return
        job.remote_id = ack["id"]
        self._await_remote(job, worker, client)

    def _await_remote(self, job: FleetJob, worker: WorkerInfo,
                      client: ServeClient) -> None:
        deadline = clock.monotonic() + self.config.job_timeout
        while not self._stop.is_set():
            if job.state != DISPATCHED or job.worker_id != worker.id:
                return  # the monitor re-routed it out from under us
            if clock.monotonic() >= deadline:
                self._fail(job, f"timed out after "
                                f"{self.config.job_timeout:.0f}s on "
                                f"worker {worker.id}")
                return
            try:
                status = client.status(job.remote_id)
            except (ServeError, urllib.error.URLError, OSError) as exc:
                self._requeue(job, worker, exclude=True,
                              why=f"lost worker mid-run: {exc}")
                return
            state = status["state"]
            if state == DONE:
                try:
                    result = client.result(job.remote_id)
                except (ServeError, urllib.error.URLError,
                        OSError) as exc:
                    self._requeue(job, worker, exclude=True,
                                  why=f"result fetch failed: {exc}")
                    return
                self._observe_duration(job, status)
                self._complete(job, worker, result)
                return
            if state in (FAILED, CANCELLED):
                self._fail(job, f"worker {worker.id} reported "
                                f"{state}: {status.get('error')}")
                return
            clock.sleep(self.config.result_poll)

    def _observe_duration(self, job: FleetJob, status: dict) -> None:
        """Feed an executed job's measured duration to the predictor."""
        if status.get("source") != "executed":
            return
        started = status.get("started_at")
        finished = status.get("finished_at")
        if not started or not finished or finished <= started:
            return
        try:
            request = parse_job_request(job.doc)
        except JobRequestError:
            return
        target = request.g5 if request.kind == "g5" else (
            request.sampled if request.kind == "sample" else None)
        if target is None:
            return
        self.cost_model.observe(target, finished - started)
        self.cost_model.flush()

    # ------------------------------------------------------------------
    # job settlement
    # ------------------------------------------------------------------
    def _complete(self, job: FleetJob, worker: WorkerInfo,
                  result: dict) -> None:
        with self._work:
            if job.terminal:
                return
            worker.jobs_completed += 1
            self._finish_locked(job, state=DONE,
                                result=result.get("result"),
                                source=result.get("source"))

    def _fail(self, job: FleetJob, error: str) -> None:
        with self._work:
            if job.terminal:
                return
            self._finish_locked(job, state=FAILED, error=error)

    def _requeue(self, job: FleetJob, worker: WorkerInfo, *,
                 exclude: bool, why: str,
                 count_attempt: bool = True) -> None:
        """Send a dispatched job back to pending (or fail it for good)."""
        with self._work:
            if job.terminal or job.state != DISPATCHED \
                    or job.worker_id != worker.id:
                return
            if exclude:
                job.excluded.add(worker.id)
            if not count_attempt:
                # Backpressure bounce, not a failure: don't burn one of
                # the job's attempts on a momentarily-full queue.
                job.attempts -= 1
            if job.attempts >= self.config.max_job_attempts:
                self._finish_locked(
                    job, state=FAILED,
                    error=f"gave up after {job.attempts} attempt(s); "
                          f"last: {why}")
                return
            job.state = QUEUED
            job.worker_id = None
            job.remote_id = None
            self._pending.append(job.id)
            self.m_redispatches.inc()
            self.log(f"requeued {job.id} ({why})")
            self._work.notify()

    def _finish_locked(self, job: FleetJob, *, state: str,
                       result: Optional[dict] = None,
                       error: Optional[str] = None,
                       source: Optional[str] = None) -> None:
        job.state = state
        job.result = result
        job.error = error
        job.source = source
        job.finished_at = clock.wall()
        job.finished.set()
        self.m_completed[state].inc()
        if self._inflight.get(job.digest) == job.id:
            del self._inflight[job.digest]
        for waiter_id in job.waiters:
            waiter = self._jobs.get(waiter_id)
            if waiter is None or waiter.terminal:
                continue
            waiter.state = state
            waiter.result = result
            waiter.error = error
            waiter.source = f"coalesced:{job.id}" if state == DONE \
                else source
            waiter.finished_at = job.finished_at
            waiter.finished.set()
            self.m_completed[state].inc()

    # ------------------------------------------------------------------
    # failure monitor
    # ------------------------------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._stop.wait(timeout=self.config.poll_interval):
            for worker in self.registry.sweep():
                self.m_worker_deaths.inc()
                self.log(f"worker {worker.id} missed heartbeats "
                         f"(> {self.registry.heartbeat_timeout:.1f}s); "
                         "re-routing its jobs")
                self._reroute_worker(worker)

    def _reroute_worker(self, worker: WorkerInfo) -> None:
        with self._lock:
            victims = [job for job in self._jobs.values()
                       if job.state == DISPATCHED
                       and job.worker_id == worker.id]
        for job in victims:
            self._requeue(job, worker, exclude=True,
                          why=f"worker {worker.id} died")

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def metrics_text(self) -> str:
        return self.metrics_registry.render()

    def log(self, line: str) -> None:
        if not self.config.quiet and self.config.log is not None:
            print(f"[fleet] {line}", file=self.config.log, flush=True)
