"""Shared content-addressed result store: read-through + replication.

:class:`FleetCache` is a drop-in :class:`~repro.exec.cache.ResultCache`
whose misses fall through to peer workers over the daemon's store
endpoint (``GET /api/v1/store/<digest>``).  A fetched envelope is
verified twice before it is trusted — the ``X-Repro-Sha256`` transport
checksum over the body, then the envelope's own recorded digest against
the addressed one (``ResultCache.raw_put`` re-checks) — so a corrupt
or truncated transfer is a miss, never a poisoned cache.

New locally-produced entries are replicated best-effort to one peer,
chosen by the same rendezvous hash the coordinator routes with: the
replica lands on the digest's *second*-choice worker, which is exactly
where the coordinator will re-route that digest if this worker dies.

All peer I/O is best-effort with short timeouts; a slow or dead peer
degrades to a local miss, never an error.
"""

from __future__ import annotations

import hashlib
import threading
import urllib.error
import urllib.request
from pathlib import Path
from typing import Optional, Union

from ..exec.cache import ResultCache
from ..exec.keys import CacheKey
from .registry import rendezvous_score

__all__ = ["FleetCache"]

#: Transport-integrity header (mirrors ``serve.http``).
CHECKSUM_HEADER = "X-Repro-Sha256"


class FleetCache(ResultCache):
    """A ResultCache backed by the fleet's shared store."""

    def __init__(self, root: Union[str, Path, None] = None,
                 self_url: Optional[str] = None,
                 peer_timeout: float = 5.0,
                 replicate: bool = True) -> None:
        super().__init__(root)
        self.self_url = self_url.rstrip("/") if self_url else None
        self.peer_timeout = peer_timeout
        self.replicate = replicate
        self._peer_lock = threading.Lock()
        self._peers: list[dict] = []
        self._stats_lock = threading.Lock()
        self._stats = {"local_hits": 0, "remote_hits": 0,
                       "remote_misses": 0, "replications": 0,
                       "replication_failures": 0, "fetch_failures": 0}

    # ------------------------------------------------------------------
    # peers
    # ------------------------------------------------------------------
    def set_peers(self, peers: list[dict]) -> None:
        """Install the live peer list (from a heartbeat response);
        entries are ``{"id": ..., "url": ...}`` and this worker's own
        URL is filtered out."""
        cleaned = [dict(peer) for peer in peers
                   if peer.get("url")
                   and peer["url"].rstrip("/") != self.self_url]
        with self._peer_lock:
            self._peers = cleaned

    def peers(self) -> list[dict]:
        with self._peer_lock:
            return list(self._peers)

    def fleet_stats(self) -> dict[str, int]:
        with self._stats_lock:
            return dict(self._stats)

    def _count(self, name: str) -> None:
        with self._stats_lock:
            self._stats[name] += 1

    # ------------------------------------------------------------------
    # read-through get / replicating put
    # ------------------------------------------------------------------
    def get(self, key: CacheKey) -> Optional[object]:
        local = super().get(key)
        if local is not None:
            self._count("local_hits")
            return local
        blob = self._fetch(key.digest)
        if blob is None:
            return None
        if not super().raw_put(key.digest, blob):
            self._count("fetch_failures")
            return None
        self._count("remote_hits")
        return super().get(key)

    def put(self, key: CacheKey, payload: object) -> None:
        super().put(key, payload)
        if self.replicate:
            self._replicate(key.digest)

    # ------------------------------------------------------------------
    # peer transport
    # ------------------------------------------------------------------
    def _fetch(self, digest: str) -> Optional[bytes]:
        """First verified envelope any peer can produce, else None.

        Peers are tried in rendezvous order for the digest — the
        most-likely holder first — so the common case is one request.
        """
        for peer in self._ranked_peers(digest):
            url = f"{peer['url']}/api/v1/store/{digest}"
            try:
                with urllib.request.urlopen(
                        url, timeout=self.peer_timeout) as reply:
                    blob = reply.read()
                    checksum = reply.headers.get(CHECKSUM_HEADER)
            except (urllib.error.URLError, OSError, ValueError):
                self._count("fetch_failures")
                continue
            if (checksum is not None
                    and checksum != hashlib.sha256(blob).hexdigest()):
                self._count("fetch_failures")
                continue
            if self.verify_envelope(digest, blob) is None:
                self._count("fetch_failures")
                continue
            return blob
        self._count("remote_misses")
        return None

    def _replicate(self, digest: str) -> None:
        """Push the new entry to the digest's top-ranked peer."""
        ranked = self._ranked_peers(digest)
        if not ranked:
            return
        blob = super().raw_get(digest)
        if blob is None:
            return
        peer = ranked[0]
        url = f"{peer['url']}/api/v1/store/{digest}"
        request = urllib.request.Request(
            url, data=blob, method="PUT",
            headers={"Content-Type": "application/octet-stream",
                     CHECKSUM_HEADER: hashlib.sha256(blob).hexdigest()})
        try:
            with urllib.request.urlopen(
                    request, timeout=self.peer_timeout) as reply:
                if reply.status == 200:
                    self._count("replications")
                else:
                    self._count("replication_failures")
        except (urllib.error.URLError, OSError, ValueError):
            self._count("replication_failures")

    def _ranked_peers(self, digest: str) -> list[dict]:
        peers = self.peers()
        return sorted(
            peers,
            key=lambda p: (rendezvous_score(digest, p.get("id", p["url"])),
                           p["url"]),
            reverse=True)
