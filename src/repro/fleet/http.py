"""The coordinator's HTTP/JSON surface (same stack as ``serve.http``).

Routes::

    POST /api/v1/jobs                      submit      -> 202/400/429/503
    GET  /api/v1/jobs/<id>                 status      -> 200/404
    GET  /api/v1/jobs/<id>/result          result      -> 200/404/409/500
    GET  /api/v1/fleet                     fleet view  -> 200
    GET  /healthz                          liveness    -> 200
    GET  /metrics                          Prometheus  -> 200
    POST /api/v1/drain                     drain       -> 202
    POST /api/v1/workers/register          admit       -> 200/400
    POST /api/v1/workers/<id>/heartbeat    heartbeat   -> 200/404
    POST /api/v1/workers/<id>/drain        stop routing-> 200/404

The job-facing half mirrors the single daemon's API exactly, so
:class:`~repro.serve.client.ServeClient` drives a coordinator and a
daemon interchangeably; 429 responses carry a predictor-derived
Retry-After.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from ..serve import clock
from ..serve.http import API_PREFIX, MAX_BODY_BYTES
from .coordinator import Coordinator, CoordinatorConfig

__all__ = ["FleetHTTPServer", "CoordinatorServer", "run_coordinator"]


class FleetHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, coordinator: Coordinator,
                 drain_response=None) -> None:
        super().__init__(address, FleetHandler)
        self.coordinator = coordinator
        #: callback for POST /api/v1/drain (drains + stops the server)
        self.drain_response = drain_response or coordinator.drain


class FleetHandler(BaseHTTPRequestHandler):
    server_version = "repro-fleet/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def coord(self) -> Coordinator:
        return self.server.coordinator

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        self.coord.log(f"{self.address_string()} {format % args}")

    def _send_json(self, code: int, doc: dict,
                   headers: Optional[dict] = None) -> None:
        body = (json.dumps(doc, sort_keys=True) + "\n").encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, code: int, text: str) -> None:
        body = text.encode()
        self.send_response(code)
        self.send_header("Content-Type",
                         "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ValueError(f"request body too large ({length} bytes)")
        raw = self.rfile.read(length)
        return json.loads(raw.decode() or "null")

    # -- routing --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        try:
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            if path == "/metrics":
                self._send_text(200, self.coord.metrics_text())
            elif path == "/healthz":
                self._send_json(200, self.coord.health_doc())
            elif path == f"{API_PREFIX}/fleet":
                self._send_json(200, self.coord.fleet_doc())
            elif path.startswith(f"{API_PREFIX}/jobs/"):
                tail = path[len(f"{API_PREFIX}/jobs/"):]
                if tail.endswith("/result"):
                    code, doc = self.coord.result_response(
                        tail[:-len("/result")])
                else:
                    code, doc = self.coord.status_response(tail)
                self._send_json(code, doc)
            else:
                self._send_json(404, {"error": f"no route for {path}"})
        except BrokenPipeError:
            pass

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        try:
            path = self.path.split("?", 1)[0].rstrip("/")
            if path == f"{API_PREFIX}/jobs":
                self._handle_submit()
            elif path == f"{API_PREFIX}/drain":
                self._send_json(202, self.server.drain_response())
            elif path == f"{API_PREFIX}/workers/register":
                self._handle_register()
            elif path.startswith(f"{API_PREFIX}/workers/"):
                tail = path[len(f"{API_PREFIX}/workers/"):]
                worker_id, _, action = tail.partition("/")
                if action == "heartbeat":
                    code, doc = self.coord.heartbeat_response(
                        worker_id, self._read_json_or_none())
                elif action == "drain":
                    code, doc = self.coord.worker_drain_response(
                        worker_id)
                else:
                    code, doc = 404, {"error": f"no route for {path}"}
                self._send_json(code, doc)
            else:
                self._send_json(404, {"error": f"no route for {path}"})
        except BrokenPipeError:
            pass

    def _read_json_or_none(self) -> object:
        try:
            return self._read_json()
        except (ValueError, UnicodeDecodeError):
            return None

    def _handle_submit(self) -> None:
        try:
            doc = self._read_json()
        except (ValueError, UnicodeDecodeError) as exc:
            self._send_json(400, {"error": f"bad request body: {exc}"})
            return
        code, body, headers = self.coord.submit_response(doc)
        self._send_json(code, body, headers=headers)

    def _handle_register(self) -> None:
        try:
            doc = self._read_json()
        except (ValueError, UnicodeDecodeError) as exc:
            self._send_json(400, {"error": f"bad request body: {exc}"})
            return
        code, body = self.coord.register_response(doc)
        self._send_json(code, body)


class CoordinatorServer:
    """Coordinator + its HTTP listener, with serve-style lifecycle."""

    def __init__(self, config: CoordinatorConfig,
                 client_factory=None) -> None:
        self.config = config
        self.coordinator = Coordinator(config,
                                       client_factory=client_factory)
        self.httpd = FleetHTTPServer((config.host, config.port),
                                     self.coordinator,
                                     drain_response=self.drain_response)
        self._http_thread: Optional[threading.Thread] = None
        self._shutdown_requested = threading.Event()
        self._drain_lock = threading.Lock()
        self._drain_report: Optional[dict] = None

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def address(self) -> str:
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> None:
        self.coordinator.start()
        self._http_thread = threading.Thread(
            target=self.httpd.serve_forever, name="fleet-http",
            daemon=True)
        self._http_thread.start()

    def request_shutdown(self) -> None:
        self._shutdown_requested.set()

    def drain_response(self) -> dict:
        report = self.coordinator.drain()
        self.request_shutdown()
        return report

    def wait(self, poll: float = 0.2) -> dict:
        while not self._shutdown_requested.wait(timeout=poll):
            pass
        return self.drain_and_stop()

    def drain_and_stop(self) -> dict:
        with self._drain_lock:
            if self._drain_report is not None:
                return self._drain_report
            report = self.coordinator.drain()
            self.coordinator.stop()
            clock.sleep(0.1)  # let in-flight handlers flush responses
            self.httpd.shutdown()
            self.httpd.server_close()
            self._drain_report = report
            return report


def run_coordinator(config: CoordinatorConfig) -> int:
    """``repro-g5 fleet coordinator`` body: serve until SIGTERM/SIGINT."""
    import signal

    server = CoordinatorServer(config)

    def _request_shutdown(signum, frame):  # noqa: ARG001
        server.request_shutdown()

    signal.signal(signal.SIGTERM, _request_shutdown)
    signal.signal(signal.SIGINT, _request_shutdown)
    server.start()
    print(f"[fleet] coordinator listening on {server.address} "
          f"({config.dispatchers} dispatcher(s), heartbeat timeout "
          f"{config.heartbeat_timeout:.1f}s)", flush=True)
    report = server.wait()
    print(f"[fleet] coordinator drained: {report['cancelled']} "
          f"cancelled, {report['dispatched_at_drain']} still on "
          "workers", flush=True)
    return 0
