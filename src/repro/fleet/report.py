"""``repro-g5 fleet report`` — a deterministic capacity plan.

Given the learned cost model's per-class predictions and a fleet
shape, answer the operator's question: *what request rate does this
fleet sustain at p99 latency under the target?*

The estimate comes from a small deterministic queueing simulation —
evenly-spaced arrivals, ``workers * workers_per_node`` servers, service
times cycling through the job mix — with a binary search on the
arrival rate for the largest one whose simulated p99 sojourn stays
under the target.  Everything is a pure function of the inputs (no
RNG, no wall clock), so the same history always produces the same
plan, which makes the report diffable across runs and testable.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..exec.costmodel import CostModel

__all__ = ["capacity_plan", "simulate_p99", "render_report"]

#: Arrivals simulated per rate probe (enough for a stable p99).
SIM_ARRIVALS = 2000

#: Binary-search refinement steps (rate resolution ~ 2**-steps).
SEARCH_STEPS = 30


def simulate_p99(rate: float, servers: int,
                 services: Sequence[float]) -> float:
    """p99 sojourn time (queue wait + service) at ``rate`` req/s.

    Deterministic D/G/c: arrival ``i`` lands at ``i / rate`` and takes
    ``services[i % len(services)]`` seconds on the first server free.
    """
    if rate <= 0 or servers < 1 or not services:
        raise ValueError("rate, servers, and services must be positive")
    free = [0.0] * servers
    sojourns = []
    for i in range(SIM_ARRIVALS):
        arrival = i / rate
        slot = min(range(servers), key=lambda s: (free[s], s))
        start = max(arrival, free[slot])
        finish = start + services[i % len(services)]
        free[slot] = finish
        sojourns.append(finish - arrival)
    sojourns.sort()
    return sojourns[min(len(sojourns) - 1,
                        int(0.99 * len(sojourns)))]


def _job_mix(cost_model: CostModel) -> dict[str, float]:
    """Per-class predicted service seconds for the report's mix.

    Observed history defines the mix; a cold model falls back to the
    static priors of the registry's canonical quick classes so the
    report stays useful on a fresh install.
    """
    known = cost_model.known_classes()
    if known:
        return dict(sorted(known.items()))
    from ..exec.pool import G5Job

    mix = {}
    for cpu in ("atomic", "timing", "minor", "o3"):
        job = G5Job("sieve", cpu, "se", "test")
        mix[f"sieve|{cpu}|se|test"] = cost_model.predict(job)
    return mix


def capacity_plan(cost_model: CostModel, workers: int,
                  workers_per_node: int = 2,
                  target_p99: float = 5.0,
                  mix: Optional[dict[str, float]] = None) -> dict:
    """The fleet's sustainable rate at ``p99 <= target_p99`` seconds."""
    if workers < 1:
        raise ValueError(f"need at least one worker, got {workers}")
    if target_p99 <= 0:
        raise ValueError(f"target_p99 must be positive, got {target_p99}")
    mix = mix if mix is not None else _job_mix(cost_model)
    services = [seconds for _, seconds in sorted(mix.items())]
    servers = workers * max(1, workers_per_node)
    mean_service = sum(services) / len(services)
    if min(services) > target_p99:
        # Even an empty fleet cannot finish one job under the target.
        return {
            "workers": workers,
            "workers_per_node": workers_per_node,
            "servers": servers,
            "target_p99_seconds": target_p99,
            "mix": mix,
            "mean_service_seconds": round(mean_service, 6),
            "sustainable_rps": 0.0,
            "p99_seconds_at_rate": round(min(services), 6),
            "feasible": False,
        }
    # Hard throughput ceiling: above servers/mean_service utilization
    # exceeds 1 and the queue grows without bound, even if a finite
    # simulation horizon would not show it in the p99 yet.
    ceiling = servers / mean_service
    low, high = 0.0, ceiling
    for _ in range(SEARCH_STEPS):
        probe = (low + high) / 2
        if probe <= 0:
            break
        if simulate_p99(probe, servers, services) <= target_p99:
            low = probe
        else:
            high = probe
    rate = low
    p99 = simulate_p99(rate, servers, services) if rate > 0 else 0.0
    return {
        "workers": workers,
        "workers_per_node": workers_per_node,
        "servers": servers,
        "target_p99_seconds": target_p99,
        "mix": mix,
        "mean_service_seconds": round(mean_service, 6),
        "sustainable_rps": round(rate, 4),
        "p99_seconds_at_rate": round(p99, 6),
        "feasible": True,
    }


def render_report(plan: dict) -> str:
    """Human-readable capacity report for the CLI."""
    lines = [
        "fleet capacity plan",
        f"  workers:            {plan['workers']} node(s) x "
        f"{plan['workers_per_node']} executor(s) = "
        f"{plan['servers']} servers",
        f"  job mix:            {len(plan['mix'])} class(es), mean "
        f"service {plan['mean_service_seconds']:.3f}s",
    ]
    if not plan["feasible"]:
        lines.append(
            f"  verdict:            infeasible - the fastest class "
            f"alone takes {plan['p99_seconds_at_rate']:.3f}s, over the "
            f"{plan['target_p99_seconds']:.1f}s p99 target")
        return "\n".join(lines)
    lines += [
        f"  sustains:           {plan['sustainable_rps']:.2f} req/s "
        f"at p99 <= {plan['target_p99_seconds']:.1f}s",
        f"  p99 at that rate:   {plan['p99_seconds_at_rate']:.3f}s",
    ]
    for name, seconds in sorted(plan["mix"].items()):
        lines.append(f"    {name:<40} {seconds:.4f}s")
    return "\n".join(lines)
