"""`repro.fleet` — multi-node serving over the `repro.serve` daemon.

One **coordinator** process fronts N **worker** daemons:

- workers register over HTTP and heartbeat every few hundred ms; a
  worker that misses enough heartbeats is declared dead and its
  dispatched jobs are re-routed (``registry``);
- each job routes to a worker by its exec cache-key digest via
  rendezvous hashing, so identical submissions land on the same worker
  and coalescing stays global (``coordinator``);
- every worker exposes its content-addressed cache as a shared store;
  a :class:`~repro.fleet.store.FleetCache` reads through to peers and
  replicates new entries, so any worker can serve any cached result
  bit-identically (``store``);
- admission control is end-to-end: worker 429s propagate into
  coordinator backpressure, and coordinator 429s carry Retry-After
  computed from the learned cost predictor (``http``);
- ``repro-g5 fleet report`` turns the predictor plus fleet shape into
  a deterministic capacity plan (``report``).
"""

from .coordinator import Coordinator, CoordinatorConfig
from .registry import WorkerInfo, WorkerRegistry
from .store import FleetCache
from .worker import FleetWorker, WorkerConfig

__all__ = ["Coordinator", "CoordinatorConfig", "FleetCache",
           "FleetWorker", "WorkerConfig", "WorkerInfo", "WorkerRegistry"]
