"""A fleet worker: the ordinary daemon plus a coordinator agent.

:class:`FleetWorker` wraps a stock :class:`~repro.serve.daemon.
SimServer` with three fleet-specific behaviours:

- its cache is a :class:`~repro.fleet.store.FleetCache`, so cache
  misses read through to peer workers and fresh results replicate to
  the digest's second-choice worker;
- the shared-store HTTP routes are enabled (``ServeConfig(store=True)``)
  so peers can read *this* worker's cache;
- an agent thread registers with the coordinator and heartbeats at the
  coordinator-assigned interval, reporting queue depth (which is how
  worker backpressure reaches coordinator admission) and refreshing
  the peer list from every heartbeat response.

The agent is deliberately resilient: a coordinator restart surfaces as
a 404 on heartbeat (re-register) or a connection error (keep trying);
the worker keeps serving direct traffic throughout.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from ..serve import clock
from ..serve.client import ServeClient, ServeError
from ..serve.daemon import ServeConfig, SimServer
from .store import FleetCache

__all__ = ["FleetWorker", "WorkerConfig"]


@dataclass
class WorkerConfig:
    """Everything ``repro-g5 fleet worker`` can tune."""

    coordinator_url: str = "http://127.0.0.1:8090"
    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    max_queue: int = 64
    cache_root: Union[str, Path, None] = None
    job_timeout: Optional[float] = None
    #: URL peers should use to reach this worker (defaults to the
    #: bound address; set when workers sit behind distinct hostnames).
    advertise_url: Optional[str] = None
    replicate: bool = True
    quiet: bool = True
    log = None

    extra: dict = field(default_factory=dict)


class FleetWorker:
    """One worker daemon wired into a coordinator."""

    def __init__(self, config: WorkerConfig, execute_fn=None) -> None:
        self.config = config
        self.cache = FleetCache(config.cache_root,
                                replicate=config.replicate)
        serve_config = ServeConfig(host=config.host, port=config.port,
                                   workers=config.workers,
                                   max_queue=config.max_queue,
                                   cache=self.cache, store=True,
                                   job_timeout=config.job_timeout,
                                   quiet=config.quiet)
        serve_config.log = config.log
        self.server = SimServer(serve_config, execute_fn=execute_fn)
        self.url = config.advertise_url or self.server.address
        self.cache.self_url = self.url.rstrip("/")
        self.coordinator = ServeClient(config.coordinator_url)
        self.worker_id: Optional[str] = None
        self.heartbeat_interval = 0.5
        self._agent: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.server.start()
        self.register()
        self._agent = threading.Thread(target=self._agent_loop,
                                       name="fleet-agent", daemon=True)
        self._agent.start()

    def stop(self) -> dict:
        """Stop heartbeating and drain the underlying daemon."""
        self._stop.set()
        if self._agent is not None:
            self._agent.join(timeout=2.0)
            self._agent = None
        return self.server.drain_and_stop()

    def wait(self, poll: float = 0.2) -> dict:
        """Serve until the daemon is asked to shut down."""
        report = self.server.wait(poll=poll)
        self._stop.set()
        return report

    def request_shutdown(self) -> None:
        self.server.request_shutdown()

    # ------------------------------------------------------------------
    # coordinator agent
    # ------------------------------------------------------------------
    def _report(self) -> dict:
        return {"queue_depth": self.server.queue.depth(),
                "max_queue": self.config.max_queue}

    def register(self) -> bool:
        """One registration attempt; returns success."""
        try:
            reply = self.coordinator._json(
                "POST", "/api/v1/workers/register",
                {"url": self.url, "report": self._report()})
        except (ServeError, OSError):
            return False
        self.worker_id = reply["id"]
        self.heartbeat_interval = float(
            reply.get("heartbeat_interval", self.heartbeat_interval))
        self.cache.set_peers(reply.get("peers") or [])
        return True

    def heartbeat(self) -> bool:
        """One heartbeat; re-registers if the coordinator forgot us."""
        if self.worker_id is None:
            return self.register()
        try:
            reply = self.coordinator._json(
                "POST", f"/api/v1/workers/{self.worker_id}/heartbeat",
                self._report())
        except ServeError as exc:
            if exc.status == 404:
                self.worker_id = None
                return self.register()
            return False
        except OSError:
            return False
        self.cache.set_peers(reply.get("peers") or [])
        return True

    def _agent_loop(self) -> None:
        while not self._stop.wait(timeout=self.heartbeat_interval):
            self.heartbeat()


def run_worker(config: WorkerConfig) -> int:
    """``repro-g5 fleet worker`` body: serve until SIGTERM/SIGINT."""
    import signal

    worker = FleetWorker(config)

    def _request_shutdown(signum, frame):  # noqa: ARG001
        worker.request_shutdown()

    signal.signal(signal.SIGTERM, _request_shutdown)
    signal.signal(signal.SIGINT, _request_shutdown)
    worker.start()
    registered = "registered" if worker.worker_id else \
        "coordinator unreachable, will keep retrying"
    print(f"[fleet] worker listening on {worker.url} "
          f"({registered} with {config.coordinator_url})", flush=True)
    report = worker.wait()
    print(f"[fleet] worker drained: {report['done']} done, "
          f"{report['cancelled']} cancelled, {report['failed']} failed",
          flush=True)
    return 0
