"""Sieve of Eratosthenes — the paper's FireSim benchmark program.

The paper runs "a simple C++ application" (the sieve) on gem5 when gem5
itself executes on the FireSim-simulated host, because FireSim is too
slow for PARSEC.  Exit code is the number of primes below ``limit``,
which tests verify against a Python reference.
"""

from __future__ import annotations

from ..g5.isa import Assembler, Program
from .kernels import DATA_BASE, emit_exit
from .mt import (
    check_threads,
    emit_join_workers,
    emit_mt_init,
    emit_spawn_workers,
    emit_worker_prologue,
)


def build_sieve(limit: int = 500) -> Program:
    """Count primes < ``limit`` with a byte-per-number sieve."""
    if limit < 3:
        raise ValueError(f"limit must be at least 3, got {limit}")
    asm = Assembler(base=0x1000)
    flags = DATA_BASE

    # clear flags[0..limit)
    asm.li("s0", flags)
    asm.li("s1", limit)
    asm.li("t0", 0)
    asm.label("clear")
    asm.add("t1", "s0", "t0")
    asm.sb("zero", "t1", 0)
    asm.addi("t0", "t0", 1)
    asm.blt("t0", "s1", "clear")

    # sieve
    asm.m5_work_begin()
    asm.li("s2", 2)                      # candidate p
    asm.label("outer")
    asm.add("t0", "s0", "s2")
    asm.lb("t1", "t0", 0)
    asm.bne("t1", "zero", "next_p")      # composite: skip
    asm.mul("t2", "s2", "s2")            # start at p*p
    asm.bge("t2", "s1", "next_p")
    asm.label("mark")
    asm.add("t3", "s0", "t2")
    asm.li("t4", 1)
    asm.sb("t4", "t3", 0)
    asm.add("t2", "t2", "s2")
    asm.blt("t2", "s1", "mark")
    asm.label("next_p")
    asm.addi("s2", "s2", 1)
    asm.blt("s2", "s1", "outer")

    # count primes
    asm.li("s3", 0)
    asm.li("t0", 2)
    asm.label("count")
    asm.add("t1", "s0", "t0")
    asm.lb("t2", "t1", 0)
    asm.bne("t2", "zero", "not_prime")
    asm.addi("s3", "s3", 1)
    asm.label("not_prime")
    asm.addi("t0", "t0", 1)
    asm.blt("t0", "s1", "count")
    asm.m5_work_end()

    emit_exit(asm, "s3")
    return asm.assemble()


def build_sieve_mt(limit: int, threads: int) -> Program:
    """Multi-threaded sieve: candidate primes strided across threads.

    Worker ``k`` marks multiples of every candidate ``p`` with
    ``p % threads == (2 + k) % threads``; composite-skip reads of a
    flag another worker has not marked yet are harmless (the candidate
    is then a composite whose multiples are already covered by its
    prime factors' workers), so the final flags array — and the prime
    count — is exactly :func:`prime_count_reference` for *any* thread
    count and interleaving.  The main thread participates as worker 0,
    then joins the workers and counts serially.
    """
    if limit < 3:
        raise ValueError(f"limit must be at least 3, got {limit}")
    check_threads(threads)
    asm = Assembler(base=0x1000)
    flags = DATA_BASE

    # main: clear flags[0..limit) serially, before any worker starts
    asm.li("s0", flags)
    asm.li("s1", limit)
    asm.li("t0", 0)
    asm.label("clear")
    asm.add("t1", "s0", "t0")
    asm.sb("zero", "t1", 0)
    asm.addi("t0", "t0", 1)
    asm.blt("t0", "s1", "clear")

    emit_mt_init(asm, threads)
    asm.m5_work_begin()
    emit_spawn_workers(asm, threads)
    asm.call("mark_slice")                   # main = worker 0
    emit_join_workers(asm, threads, "sv")

    # count primes serially (all marking is complete after the join)
    asm.li("s3", 0)
    asm.li("t0", 2)
    asm.label("count")
    asm.add("t1", "s0", "t0")
    asm.lb("t2", "t1", 0)
    asm.bne("t2", "zero", "not_prime")
    asm.addi("s3", "s3", 1)
    asm.label("not_prime")
    asm.addi("t0", "t0", 1)
    asm.blt("t0", "s1", "count")
    asm.m5_work_end()
    emit_exit(asm, "s3")

    # worker k: same slice subroutine with s10 = k
    emit_worker_prologue(asm, threads)
    asm.li("s0", flags)
    asm.li("s1", limit)
    asm.call("mark_slice")
    asm.m5_thread_exit()
    asm.halt()

    # mark_slice: for p = 2 + s10; p < limit; p += s9: mark multiples
    asm.label("mark_slice")
    asm.addi("s2", "s10", 2)
    asm.label("outer")
    asm.bge("s2", "s1", "slice_done")
    asm.add("t0", "s0", "s2")
    asm.lb("t1", "t0", 0)
    asm.bne("t1", "zero", "next_p")          # known composite: skip
    asm.mul("t2", "s2", "s2")                # start at p*p
    asm.bge("t2", "s1", "next_p")
    asm.label("mark")
    asm.add("t3", "s0", "t2")
    asm.li("t4", 1)
    asm.sb("t4", "t3", 0)
    asm.add("t2", "t2", "s2")
    asm.blt("t2", "s1", "mark")
    asm.label("next_p")
    asm.add("s2", "s2", "s9")
    asm.j("outer")
    asm.label("slice_done")
    asm.ret()
    return asm.assemble()


def prime_count_reference(limit: int) -> int:
    """Python reference for the sieve's expected exit code."""
    if limit < 3:
        raise ValueError(f"limit must be at least 3, got {limit}")
    flags = bytearray(limit)
    for p in range(2, limit):
        if flags[p]:
            continue
        for multiple in range(p * p, limit, p):
            flags[multiple] = 1
    return sum(1 for i in range(2, limit) if not flags[i])
