"""Workload registry: every guest program the experiments run.

Mirrors the paper's workload set: nine PARSEC/SPLASH-2x applications,
the Boot-Exit FS workload, and the sieve program used on FireSim.  Each
workload builds at one of four scales (``test`` < ``simsmall`` <
``simmedium`` < ``simlarge``); the paper's runs correspond to
``simmedium``, while ``simlarge`` gives sampled simulation a run long
enough to amortise its profiling and warmup overheads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..g5.isa import Program
from .bootexit import build_boot_exit
from .parsec import (
    build_blackscholes,
    build_blackscholes_mt,
    build_canneal,
    build_dedup,
    build_streamcluster,
)
from .sieve import build_sieve, build_sieve_mt
from .splash2x import (
    build_fmm,
    build_ocean_cp,
    build_ocean_cp_mt,
    build_ocean_ncp,
    build_water_nsquared,
    build_water_nsquared_mt,
    build_water_spatial,
)

SCALES = ("test", "simsmall", "simmedium", "simlarge")


@dataclass(frozen=True)
class Workload:
    """One guest workload with per-scale build parameters."""

    name: str
    suite: str                     # "parsec", "splash2x", "os", "micro"
    mode: str                      # "se" or "fs"
    builder: Callable[..., Program]
    scale_params: dict[str, dict[str, int]]
    #: Threaded variant of the kernel (None: single-threaded only).
    mt_builder: Optional[Callable[..., Program]] = None

    @property
    def threaded(self) -> bool:
        return self.mt_builder is not None

    def build(self, scale: str = "simsmall", threads: int = 1) -> Program:
        """Build the kernel; ``threads > 1`` selects the ``-n`` variant.

        ``threads <= 1`` always takes the legacy single-threaded
        builder, byte-identical to what it produced before threaded
        variants existed (the golden-stats and bit-identity suites
        depend on that).
        """
        if scale not in self.scale_params:
            raise KeyError(
                f"workload {self.name!r} has no scale {scale!r}; "
                f"choose from {sorted(self.scale_params)}")
        params = self.scale_params[scale]
        if threads <= 1:
            return self.builder(**params)
        if self.mt_builder is None:
            raise ValueError(
                f"workload {self.name!r} has no threaded variant")
        return self.mt_builder(**params, threads=threads)


def _w(name: str, suite: str, mode: str, builder: Callable[..., Program],
       test: dict[str, int], simsmall: dict[str, int],
       simmedium: dict[str, int], simlarge: dict[str, int],
       mt: Optional[Callable[..., Program]] = None) -> Workload:
    return Workload(name, suite, mode, builder, {
        "test": test, "simsmall": simsmall, "simmedium": simmedium,
        "simlarge": simlarge}, mt_builder=mt)


#: The paper's nine PARSEC/SPLASH-2x workloads plus Boot-Exit and sieve.
WORKLOADS: dict[str, Workload] = {w.name: w for w in [
    _w("blackscholes", "parsec", "se", build_blackscholes,
       test={"n_options": 16, "rounds": 1},
       simsmall={"n_options": 96, "rounds": 2},
       simmedium={"n_options": 160, "rounds": 3},
       simlarge={"n_options": 320, "rounds": 5},
       mt=build_blackscholes_mt),
    _w("canneal", "parsec", "se", build_canneal,
       test={"n_elements": 32, "n_swaps": 40},
       simsmall={"n_elements": 256, "n_swaps": 350},
       simmedium={"n_elements": 512, "n_swaps": 700},
       simlarge={"n_elements": 1024, "n_swaps": 1400}),
    _w("dedup", "parsec", "se", build_dedup,
       test={"n_bytes": 256},
       simsmall={"n_bytes": 2048},
       simmedium={"n_bytes": 5120},
       simlarge={"n_bytes": 12288}),
    _w("streamcluster", "parsec", "se", build_streamcluster,
       test={"n_points": 12, "n_centers": 3, "n_dims": 2},
       simsmall={"n_points": 64, "n_centers": 6, "n_dims": 3},
       simmedium={"n_points": 96, "n_centers": 8, "n_dims": 4},
       simlarge={"n_points": 160, "n_centers": 10, "n_dims": 5}),
    _w("water_nsquared", "splash2x", "se", build_water_nsquared,
       test={"n_molecules": 8, "steps": 1},
       simsmall={"n_molecules": 28, "steps": 2},
       simmedium={"n_molecules": 40, "steps": 3},
       simlarge={"n_molecules": 64, "steps": 4},
       mt=build_water_nsquared_mt),
    _w("water_spatial", "splash2x", "se", build_water_spatial,
       test={"n_molecules": 16, "n_cells": 4, "steps": 1},
       simsmall={"n_molecules": 48, "n_cells": 6, "steps": 2},
       simmedium={"n_molecules": 64, "n_cells": 8, "steps": 3},
       simlarge={"n_molecules": 96, "n_cells": 10, "steps": 4}),
    _w("ocean_cp", "splash2x", "se", build_ocean_cp,
       test={"grid": 6, "sweeps": 1},
       simsmall={"grid": 14, "sweeps": 2},
       simmedium={"grid": 18, "sweeps": 4},
       simlarge={"grid": 26, "sweeps": 6},
       mt=build_ocean_cp_mt),
    _w("ocean_ncp", "splash2x", "se", build_ocean_ncp,
       test={"grid": 6, "sweeps": 1},
       simsmall={"grid": 14, "sweeps": 2},
       simmedium={"grid": 18, "sweeps": 4},
       simlarge={"grid": 26, "sweeps": 6}),
    _w("fmm", "splash2x", "se", build_fmm,
       test={"levels": 4, "rounds": 1},
       simsmall={"levels": 6, "rounds": 2},
       simmedium={"levels": 7, "rounds": 3},
       simlarge={"levels": 8, "rounds": 4}),
    _w("boot_exit", "os", "fs", build_boot_exit,
       test={"mem_pages": 4, "probe_loops": 8},
       simsmall={"mem_pages": 16, "probe_loops": 30},
       simmedium={"mem_pages": 28, "probe_loops": 50},
       simlarge={"mem_pages": 48, "probe_loops": 80}),
    _w("sieve", "micro", "se", build_sieve,
       test={"limit": 50},
       simsmall={"limit": 300},
       simmedium={"limit": 600},
       simlarge={"limit": 3000},
       mt=build_sieve_mt),
]}

#: The nine benchmark workloads Fig. 1 averages over.
PARSEC_SPLASH_NAMES = [
    "blackscholes", "canneal", "dedup", "streamcluster",
    "water_nsquared", "water_spatial", "ocean_cp", "ocean_ncp", "fmm",
]


def get_workload(name: str) -> Workload:
    """Look up a registered workload by name."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from "
            f"{sorted(WORKLOADS)}") from None
