"""PARSEC-3.0-like guest kernels.

Four kernels modelled on the PARSEC workloads the paper simulates, with
the same computational character (see DESIGN.md §2 for the substitution
argument):

- **blackscholes** — option pricing: regular, floating-point heavy.
- **canneal** — simulated-annealing element swaps: data-dependent
  branches and irregular memory access.
- **dedup** — rolling-hash chunking: byte streaming plus hash buckets.
- **streamcluster** — k-means-style clustering: dense FP distance loops.

Sizes are scaled down so a detailed-CPU simulation finishes in seconds;
the paper's "simmedium" corresponds to the default scales here.
"""

from __future__ import annotations

from ..g5.isa import Assembler, Program
from .kernels import (
    DATA_BASE,
    emit_exit,
    emit_fill_bytes,
    emit_fill_linear,
    emit_lcg_init,
    emit_lcg_next,
    emit_load_const_f,
)
from .mt import (
    MT_PARTIALS,
    check_threads,
    emit_join_workers,
    emit_mt_init,
    emit_spawn_workers,
    emit_worker_prologue,
)


def build_blackscholes(n_options: int = 160, rounds: int = 2) -> Program:
    """Black-Scholes-style option pricing over ``n_options`` options.

    Each option computes a polynomial approximation of the cumulative
    normal distribution — a dozen FP operations including divide and
    square root — and stores the price.  Exit code is the integer part
    of the price sum, a checksum tests can verify.
    """
    if n_options <= 0 or rounds <= 0:
        raise ValueError("n_options and rounds must be positive")
    asm = Assembler(base=0x1000)
    spot = DATA_BASE
    price = DATA_BASE + n_options * 8

    asm.li("s0", spot)
    asm.li("s1", n_options)
    emit_fill_linear(asm, "s0", "s1", 8, "bs")

    asm.li("s2", price)
    asm.li("s3", 0)                      # round counter
    emit_load_const_f(asm, "f20", 4, 5)   # strike scale 0.8
    emit_load_const_f(asm, "f21", 1968, 10000)   # cnd coefficient
    emit_load_const_f(asm, "f22", 113, 10000)    # cubic coefficient
    emit_load_const_f(asm, "f23", 1, 2)          # 0.5
    emit_load_const_f(asm, "f24", 1, 1)          # 1.0
    asm.fmv("f25", "f24")
    asm.fsub("f25", "f25", "f25")        # running sum = 0.0

    asm.m5_work_begin()
    asm.label("round")
    asm.li("t0", 0)
    asm.label("option")
    # load spot, derive strike and time-to-maturity
    asm.slli("t1", "t0", 3)
    asm.add("t1", "t1", "s0")
    asm.fld("f0", "t1", 0)               # S
    asm.fmul("f1", "f0", "f20")          # K = 0.8 S
    # d = (S - K) / sqrt(S)
    asm.fsub("f2", "f0", "f1")
    asm.fsqrt("f3", "f0")
    asm.fdiv("f2", "f2", "f3")
    # cnd(d) = 0.5 + c1*d - c3*d^3
    asm.fmul("f4", "f2", "f2")
    asm.fmul("f4", "f4", "f2")           # d^3
    asm.fmul("f5", "f2", "f21")
    asm.fmul("f6", "f4", "f22")
    asm.fsub("f5", "f5", "f6")
    asm.fadd("f5", "f5", "f23")          # cnd
    # price = S*cnd - K*(1-cnd)
    asm.fmul("f7", "f0", "f5")
    asm.fsub("f8", "f24", "f5")
    asm.fmul("f8", "f1", "f8")
    asm.fsub("f7", "f7", "f8")
    asm.slli("t2", "t0", 3)
    asm.add("t2", "t2", "s2")
    asm.fsd("f7", "t2", 0)
    asm.fadd("f25", "f25", "f7")
    asm.addi("t0", "t0", 1)
    asm.blt("t0", "s1", "option")
    asm.addi("s3", "s3", 1)
    asm.li("t3", rounds)
    asm.blt("s3", "t3", "round")

    asm.m5_work_end()
    asm.fcvt_l_d("a0", "f25")
    emit_exit(asm)
    return asm.assemble()


def build_blackscholes_mt(n_options: int, rounds: int,
                          threads: int) -> Program:
    """Threaded blackscholes: options strided across threads.

    Option pricing is embarrassingly parallel — each thread prices the
    options with ``index % threads == worker``, writing disjoint slots
    of the price array and accumulating a local sum.  Workers publish
    their partials; the main thread joins and reduces serially in
    worker-index order.  The price array is identical for every thread
    count; at one thread the sum order matches the serial kernel's.
    """
    if n_options <= 0 or rounds <= 0:
        raise ValueError("n_options and rounds must be positive")
    check_threads(threads)
    asm = Assembler(base=0x1000)
    spot = DATA_BASE
    price = DATA_BASE + n_options * 8

    asm.li("s0", spot)
    asm.li("s1", n_options)
    emit_fill_linear(asm, "s0", "s1", 8, "bs")

    emit_mt_init(asm, threads)
    asm.li("s2", price)
    asm.call("bs_consts")
    asm.m5_work_begin()
    emit_spawn_workers(asm, threads)
    asm.call("bs_slice")                 # main = worker 0
    emit_join_workers(asm, threads, "bs")

    # serial reduction in worker-index order
    asm.fsub("f25", "f25", "f25")        # running sum = 0.0
    asm.li("t0", MT_PARTIALS)
    asm.li("t2", 0)
    asm.label("bs_reduce")
    asm.slli("t1", "t2", 3)
    asm.add("t1", "t1", "t0")
    asm.fld("f0", "t1", 0)
    asm.fadd("f25", "f25", "f0")
    asm.addi("t2", "t2", 1)
    asm.li("t3", threads)
    asm.blt("t2", "t3", "bs_reduce")
    asm.m5_work_end()
    asm.fcvt_l_d("a0", "f25")
    emit_exit(asm)

    # worker
    emit_worker_prologue(asm, threads)
    asm.li("s0", spot)
    asm.li("s1", n_options)
    asm.li("s2", price)
    asm.call("bs_consts")
    asm.call("bs_slice")
    asm.m5_thread_exit()
    asm.halt()

    # bs_consts: per-core FP constants (FP registers are per-core)
    asm.label("bs_consts")
    emit_load_const_f(asm, "f20", 4, 5)          # strike scale 0.8
    emit_load_const_f(asm, "f21", 1968, 10000)   # cnd coefficient
    emit_load_const_f(asm, "f22", 113, 10000)    # cubic coefficient
    emit_load_const_f(asm, "f23", 1, 2)          # 0.5
    emit_load_const_f(asm, "f24", 1, 1)          # 1.0
    asm.fsub("f25", "f24", "f24")                # running sum = 0.0
    asm.ret()

    # bs_slice: price options t0 = s10, s10+s9, ... for every round
    asm.label("bs_slice")
    asm.li("s3", 0)                      # round counter
    asm.label("round")
    asm.mv("t0", "s10")
    asm.label("option")
    asm.bge("t0", "s1", "options_done")
    asm.slli("t1", "t0", 3)
    asm.add("t1", "t1", "s0")
    asm.fld("f0", "t1", 0)               # S
    asm.fmul("f1", "f0", "f20")          # K = 0.8 S
    asm.fsub("f2", "f0", "f1")           # d = (S - K) / sqrt(S)
    asm.fsqrt("f3", "f0")
    asm.fdiv("f2", "f2", "f3")
    asm.fmul("f4", "f2", "f2")           # cnd(d) = 0.5 + c1*d - c3*d^3
    asm.fmul("f4", "f4", "f2")
    asm.fmul("f5", "f2", "f21")
    asm.fmul("f6", "f4", "f22")
    asm.fsub("f5", "f5", "f6")
    asm.fadd("f5", "f5", "f23")
    asm.fmul("f7", "f0", "f5")           # price = S*cnd - K*(1-cnd)
    asm.fsub("f8", "f24", "f5")
    asm.fmul("f8", "f1", "f8")
    asm.fsub("f7", "f7", "f8")
    asm.slli("t2", "t0", 3)
    asm.add("t2", "t2", "s2")
    asm.fsd("f7", "t2", 0)
    asm.fadd("f25", "f25", "f7")
    asm.add("t0", "t0", "s9")
    asm.j("option")
    asm.label("options_done")
    asm.addi("s3", "s3", 1)
    asm.li("t3", rounds)
    asm.blt("s3", "t3", "round")
    # publish the partial into this worker's slot
    asm.li("t0", MT_PARTIALS)
    asm.slli("t1", "s10", 3)
    asm.add("t0", "t0", "t1")
    asm.fsd("f25", "t0", 0)
    asm.ret()
    return asm.assemble()


def build_canneal(n_elements: int = 512, n_swaps: int = 600) -> Program:
    """Simulated-annealing routing-cost minimisation over element swaps.

    Picks two pseudo-random elements per step, evaluates the cost delta
    of swapping them toward their "ideal" slots, and swaps when the cost
    improves — data-dependent branching and irregular loads, like
    canneal's netlist swaps.  Exit code is the number of accepted swaps.
    """
    if n_elements <= 1 or n_swaps <= 0:
        raise ValueError("need at least two elements and one swap")
    asm = Assembler(base=0x1000)
    elements = DATA_BASE

    # elements[i] = random slot preference in [0, n_elements)
    emit_lcg_init(asm, seed=20230419)
    asm.li("s0", elements)
    asm.li("s1", n_elements)
    asm.li("t0", 0)
    asm.label("init")
    emit_lcg_next(asm, "t1", "s1")
    asm.slli("t2", "t0", 3)
    asm.add("t2", "t2", "s0")
    asm.sd("t1", "t2", 0)
    asm.addi("t0", "t0", 1)
    asm.blt("t0", "s1", "init")

    asm.li("s2", 0)          # accepted swaps
    asm.li("s3", 0)          # step counter
    asm.li("s4", n_swaps)
    asm.m5_work_begin()
    asm.label("step")
    emit_lcg_next(asm, "s5", "s1")       # index i
    emit_lcg_next(asm, "s6", "s1")       # index j
    asm.slli("t1", "s5", 3)
    asm.add("t1", "t1", "s0")
    asm.ld("s7", "t1", 0)                # a = elements[i]
    asm.slli("t2", "s6", 3)
    asm.add("t2", "t2", "s0")
    asm.ld("s8", "t2", 0)                # b = elements[j]
    # cost now: |a - i| + |b - j|; cost after: |a - j| + |b - i|
    asm.sub("t3", "s7", "s5")
    # abs via arithmetic-shift sign mask
    asm.li("t6", 63)
    asm.sra("t4", "t3", "t6")
    asm.xor("t3", "t3", "t4")
    asm.sub("t3", "t3", "t4")
    asm.sub("t5", "s8", "s6")
    asm.sra("t4", "t5", "t6")
    asm.xor("t5", "t5", "t4")
    asm.sub("t5", "t5", "t4")
    asm.add("s9", "t3", "t5")            # cost_now
    asm.sub("t3", "s7", "s6")
    asm.sra("t4", "t3", "t6")
    asm.xor("t3", "t3", "t4")
    asm.sub("t3", "t3", "t4")
    asm.sub("t5", "s8", "s5")
    asm.sra("t4", "t5", "t6")
    asm.xor("t5", "t5", "t4")
    asm.sub("t5", "t5", "t4")
    asm.add("s10", "t3", "t5")           # cost_after
    asm.bge("s10", "s9", "reject")
    # accept: swap the two elements
    asm.sd("s8", "t1", 0)
    asm.sd("s7", "t2", 0)
    asm.addi("s2", "s2", 1)
    asm.label("reject")
    asm.addi("s3", "s3", 1)
    asm.blt("s3", "s4", "step")
    asm.m5_work_end()

    emit_exit(asm, "s2")
    return asm.assemble()


def build_dedup(n_bytes: int = 4096, chunk_mask: int = 0x3F) -> Program:
    """Content-defined chunking with a rolling hash, like dedup's pipeline.

    Streams bytes, maintains ``h = h*31 + b``, declares a chunk boundary
    whenever ``h & chunk_mask == 0``, and counts boundary hits per hash
    bucket.  Exit code is the number of chunks found.
    """
    if n_bytes <= 0:
        raise ValueError("n_bytes must be positive")
    n_buckets = 64
    asm = Assembler(base=0x1000)
    data = DATA_BASE
    buckets = DATA_BASE + n_bytes + 64

    asm.li("s0", data)
    asm.li("s1", n_bytes)
    emit_fill_bytes(asm, "s0", "s1", "dd")

    asm.li("s2", buckets)
    asm.li("s3", 0)          # chunk count
    asm.li("s4", 0)          # hash state
    asm.li("s5", 0)          # byte index
    asm.li("s6", n_buckets)
    asm.m5_work_begin()
    asm.label("scan")
    asm.add("t0", "s0", "s5")
    asm.lb("t1", "t0", 0)
    asm.li("t2", 31)
    asm.mul("s4", "s4", "t2")
    asm.add("s4", "s4", "t1")
    asm.li("t2", 0xFFFFFF)
    asm.and_("s4", "s4", "t2")
    asm.andi("t3", "s4", chunk_mask)
    asm.bne("t3", "zero", "nochunk")
    # chunk boundary: bump bucket h % n_buckets
    asm.rem("t4", "s4", "s6")
    asm.slli("t4", "t4", 3)
    asm.add("t4", "t4", "s2")
    asm.ld("t5", "t4", 0)
    asm.addi("t5", "t5", 1)
    asm.sd("t5", "t4", 0)
    asm.addi("s3", "s3", 1)
    asm.li("s4", 0)
    asm.label("nochunk")
    asm.addi("s5", "s5", 1)
    asm.blt("s5", "s1", "scan")
    asm.m5_work_end()

    emit_exit(asm, "s3")
    return asm.assemble()


def build_streamcluster(n_points: int = 96, n_centers: int = 8,
                        n_dims: int = 4) -> Program:
    """Online-clustering distance kernel, like streamcluster's core.

    For every point, computes the squared Euclidean distance to each
    centre, tracks the minimum, and accumulates the total assignment
    cost.  Exit code is the integer part of the total cost.
    """
    if n_points <= 0 or n_centers <= 0 or n_dims <= 0:
        raise ValueError("points/centers/dims must be positive")
    asm = Assembler(base=0x1000)
    points = DATA_BASE
    centers = DATA_BASE + n_points * n_dims * 8

    asm.li("s0", points)
    asm.li("t4", n_points * n_dims)
    emit_fill_linear(asm, "s0", "t4", 8, "pts")
    asm.li("s1", centers)
    asm.li("t4", n_centers * n_dims)
    emit_fill_linear(asm, "s1", "t4", 8, "ctr")

    emit_load_const_f(asm, "f20", 0)     # total cost
    asm.m5_work_begin()
    asm.li("s2", 0)                      # point index
    asm.label("point")
    emit_load_const_f(asm, "f21", 1 << 20)   # current min (large)
    asm.li("s3", 0)                      # center index
    asm.label("center")
    emit_load_const_f(asm, "f22", 0)     # dist accumulator
    asm.li("s4", 0)                      # dim index
    asm.label("dim")
    asm.li("t0", n_dims)
    asm.mul("t1", "s2", "t0")
    asm.add("t1", "t1", "s4")
    asm.slli("t1", "t1", 3)
    asm.add("t1", "t1", "s0")
    asm.fld("f0", "t1", 0)               # point[p][d]
    asm.mul("t2", "s3", "t0")
    asm.add("t2", "t2", "s4")
    asm.slli("t2", "t2", 3)
    asm.add("t2", "t2", "s1")
    asm.fld("f1", "t2", 0)               # center[c][d]
    asm.fsub("f2", "f0", "f1")
    asm.fmadd("f22", "f2", "f2")         # acc += diff^2
    asm.addi("s4", "s4", 1)
    asm.li("t3", n_dims)
    asm.blt("s4", "t3", "dim")
    asm.flt("t4", "f22", "f21")
    asm.beq("t4", "zero", "notmin")
    asm.fmv("f21", "f22")
    asm.label("notmin")
    asm.addi("s3", "s3", 1)
    asm.li("t3", n_centers)
    asm.blt("s3", "t3", "center")
    asm.fadd("f20", "f20", "f21")
    asm.addi("s2", "s2", 1)
    asm.li("t3", n_points)
    asm.blt("s2", "t3", "point")
    asm.m5_work_end()

    asm.fcvt_l_d("a0", "f20")
    emit_exit(asm)
    return asm.assemble()
