"""The Boot-Exit workload: boot the (mini) OS in FS mode and exit.

Mirrors the paper's Boot-Exit configuration: in full-system mode the
guest runs kernel-style boot work — device probing over MMIO, memory
scrubbing, page-table construction, init-process spawn — prints a boot
banner through the UART, then powers the machine off.  Every phase
reports a marker via the firmware interface so tests can verify boot
progress.
"""

from __future__ import annotations

from ..g5.fs.devices import (
    POWER_BASE,
    RTC_BASE,
    SHUTDOWN_MAGIC,
    UART_BASE,
    UART_DATA,
    UART_STATUS,
)
from ..g5.isa import Assembler, Program
from .kernels import DATA_BASE

#: Boot banner transmitted over the UART.
BANNER = "miniux 5.4.0 booting...\n"

#: Phase markers emitted through the firmware interface.
PHASE_DEVICES = 10
PHASE_MEMINIT = 20
PHASE_PAGETABLES = 30
PHASE_INIT_SPAWN = 40
PHASE_DONE = 100


def _emit_mark_phase(asm: Assembler, phase: int) -> None:
    asm.li("a0", phase)
    asm.li("a7", 2)  # FW_MARK_PHASE
    asm.ecall()


def build_boot_exit(mem_pages: int = 24, probe_loops: int = 40) -> Program:
    """Build the FS boot image.

    ``mem_pages`` controls how many 4KB pages the boot scrubs/maps (the
    dominant boot cost); ``probe_loops`` the device-probe polling count.
    """
    if mem_pages <= 0 or probe_loops <= 0:
        raise ValueError("mem_pages and probe_loops must be positive")
    asm = Assembler(base=0x1000)

    # Phase 1: probe devices — poll UART status, read the RTC twice.
    asm.li("s0", UART_BASE)
    asm.li("s1", RTC_BASE)
    asm.li("t0", 0)
    asm.label("probe")
    asm.lw("t1", "s0", UART_STATUS)
    asm.beq("t1", "zero", "probe_next")  # not ready: keep polling
    asm.lw("t2", "s1", 0)                # RTC low word
    asm.label("probe_next")
    asm.addi("t0", "t0", 1)
    asm.li("t3", probe_loops)
    asm.blt("t0", "t3", "probe")
    _emit_mark_phase(asm, PHASE_DEVICES)

    # Phase 2: scrub memory — zero mem_pages pages, 64B granularity.
    asm.li("s2", DATA_BASE)
    asm.li("s3", mem_pages * 4096 // 64)
    asm.li("t0", 0)
    asm.mv("t1", "s2")
    asm.label("scrub")
    asm.sd("zero", "t1", 0)
    asm.sd("zero", "t1", 8)
    asm.sd("zero", "t1", 16)
    asm.sd("zero", "t1", 24)
    asm.sd("zero", "t1", 32)
    asm.sd("zero", "t1", 40)
    asm.sd("zero", "t1", 48)
    asm.sd("zero", "t1", 56)
    asm.addi("t1", "t1", 64)
    asm.addi("t0", "t0", 1)
    asm.blt("t0", "s3", "scrub")
    _emit_mark_phase(asm, PHASE_MEMINIT)

    # Phase 3: build page tables — one 8-byte PTE per page.
    asm.li("s4", DATA_BASE + mem_pages * 4096)
    asm.li("t0", 0)
    asm.label("ptes")
    asm.slli("t1", "t0", 12)             # page frame address
    asm.ori("t1", "t1", 0x7)             # V|R|W bits
    asm.slli("t2", "t0", 3)
    asm.add("t2", "t2", "s4")
    asm.sd("t1", "t2", 0)
    asm.addi("t0", "t0", 1)
    asm.li("t3", mem_pages)
    asm.blt("t0", "t3", "ptes")
    _emit_mark_phase(asm, PHASE_PAGETABLES)

    # Phase 4: spawn init — print the banner byte by byte over the UART.
    banner_bytes = BANNER.encode()
    asm.li("s5", UART_BASE)
    for byte in banner_bytes:
        asm.li("t0", byte)
        asm.sw("t0", "s5", UART_DATA)
    _emit_mark_phase(asm, PHASE_INIT_SPAWN)

    # Phase 5: done — mark and power off.
    _emit_mark_phase(asm, PHASE_DONE)
    asm.li("t0", SHUTDOWN_MAGIC)
    asm.li("s6", POWER_BASE)
    asm.sw("t0", "s6", 0)
    asm.halt()  # unreachable: the power write exits the simulation
    return asm.assemble()
