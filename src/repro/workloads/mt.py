"""Guest thread-runtime macros: locks, barriers, spawn/join.

Multi-threaded workload variants are built from these emitters, which
wrap the LL/SC atomics (:class:`~repro.g5.isa.instructions.Opcode.LL` /
``SC``) and the thread pseudo-ops (``m5_thread_spawn`` /
``m5_thread_exit`` / ``m5_thread_poll``).  The runtime is deliberately
minimal — a spinlock, an LL/SC fetch-and-add, a generation-counting
barrier, and unrolled spawn/join sequences — mirroring the pthread
subset the PARSEC/SPLASH-2x kernels actually exercise.

Register conventions (on top of the kernels.py ABI)
---------------------------------------------------
``s9``
    thread count (main + spawned workers); every participant loads it.
``s10``
    worker index: 0 for the main thread, ``k`` for the k-th spawned
    worker (passed to the worker entry in ``a0``).
``tp``
    runtime thread id, seeded by the spawn pseudo-op (0 on the boot
    core).  Kernels use ``s10`` for partitioning; ``tp`` is what
    ``m5_thread_exit`` reports against.

Control block layout (all 8-byte words, below ``DATA_BASE``)
------------------------------------------------------------
``MT_LOCK``        global spinlock word (0 free / 1 held)
``MT_BAR_COUNT``   barrier arrival count
``MT_BAR_GEN``     barrier generation number
``MT_TIDS``        spawned runtime tids, indexed by worker index
``MT_PARTIALS``    per-worker reduction slots, indexed by worker index
"""

from __future__ import annotations

from ..g5.isa import Assembler

#: Thread-runtime control block, below the workload data segment.
MT_BASE = 0x000F_0000
MT_LOCK = MT_BASE
MT_BAR_COUNT = MT_BASE + 8
MT_BAR_GEN = MT_BASE + 16
MT_TIDS = MT_BASE + 64
MT_PARTIALS = MT_BASE + 128

#: Matches the SimConfig core cap: one guest thread per core.
MAX_GUEST_THREADS = 8


def check_threads(threads: int) -> None:
    """Validate a thread count (1 is allowed: the threaded kernel with
    zero spawned workers, which is the differential reference)."""
    if not 1 <= threads <= MAX_GUEST_THREADS:
        raise ValueError(
            f"threaded kernels take 1..{MAX_GUEST_THREADS} threads, "
            f"got {threads}")


def emit_mt_init(asm: Assembler, threads: int) -> None:
    """Zero the runtime control words and seed s9/s10 for the main
    thread (worker index 0).  Clobbers t5."""
    asm.li("t5", MT_BASE)
    asm.sd("zero", "t5", 0)       # lock
    asm.sd("zero", "t5", 8)       # barrier count
    asm.sd("zero", "t5", 16)      # barrier generation
    asm.li("s9", threads)
    asm.li("s10", 0)


def emit_worker_prologue(asm: Assembler, threads: int,
                         label: str = "mtworker") -> None:
    """Worker entry point: bind the index argument and thread count.

    The spawn pseudo-op delivers the spawn argument in a0 (the worker
    index by convention) and the runtime tid in tp.
    """
    asm.label(label)
    asm.mv("s10", "a0")
    asm.li("s9", threads)


def emit_spawn_workers(asm: Assembler, threads: int,
                       worker_label: str = "mtworker") -> None:
    """Spawn workers 1..threads-1, recording their tids.

    Clobbers a0, a1, t5.  Each worker starts at ``worker_label`` with
    its index in a0.
    """
    for index in range(1, threads):
        asm.la("a0", worker_label)
        asm.li("a1", index)
        asm.m5_thread_spawn()
        asm.li("t5", MT_TIDS + 8 * index)
        asm.sd("a0", "t5", 0)


def emit_join_workers(asm: Assembler, threads: int, prefix: str) -> None:
    """Poll each spawned worker's tid until it has exited.

    Clobbers a0, t5.  ``prefix`` keeps the per-worker spin labels
    unique across call sites.
    """
    for index in range(1, threads):
        asm.li("t5", MT_TIDS + 8 * index)
        asm.label(f"{prefix}_join{index}")
        asm.ld("a0", "t5", 0)
        asm.m5_thread_poll()
        asm.beq("a0", "zero", f"{prefix}_join{index}")


def emit_lock_acquire(asm: Assembler, prefix: str) -> None:
    """Spin until the global lock is taken.  Clobbers t4, t5, t6."""
    asm.li("t5", MT_LOCK)
    asm.label(f"{prefix}_lk")
    asm.ll("t6", "t5")
    asm.bne("t6", "zero", f"{prefix}_lk")    # held: keep spinning
    asm.li("t4", 1)
    asm.sc("t6", "t5", "t4")
    asm.bne("t6", "zero", f"{prefix}_lk")    # lost the race: retry


def emit_lock_release(asm: Assembler) -> None:
    """Release the global lock (a plain store clears any reservation
    covering the lock word).  Clobbers t5."""
    asm.li("t5", MT_LOCK)
    asm.sd("zero", "t5", 0)


def emit_atomic_add(asm: Assembler, addr_reg: str, delta_reg: str,
                    old_dst: str, prefix: str) -> None:
    """``old_dst = *addr_reg; *addr_reg += delta`` via LL/SC.

    Clobbers t5, t6; ``old_dst`` must not be t5/t6 or either operand.
    """
    asm.label(f"{prefix}_aa")
    asm.ll(old_dst, addr_reg)
    asm.add("t6", old_dst, delta_reg)
    asm.sc("t5", addr_reg, "t6")
    asm.bne("t5", "zero", f"{prefix}_aa")


def emit_barrier(asm: Assembler, prefix: str) -> None:
    """Generation-counting barrier over all s9 threads.

    The last arriver resets the count and bumps the generation; everyone
    else spins on the generation word.  Safe for reuse in a loop: the
    count is reset *before* the generation bump, so re-arrivals for the
    next phase never mix with the current one.  Clobbers t2..t6;
    requires s9 = thread count.
    """
    asm.li("t5", MT_BAR_GEN)
    asm.ld("t2", "t5", 0)                    # my generation
    asm.li("t5", MT_BAR_COUNT)
    asm.label(f"{prefix}_bar_add")
    asm.ll("t3", "t5")
    asm.addi("t3", "t3", 1)
    asm.sc("t4", "t5", "t3")
    asm.bne("t4", "zero", f"{prefix}_bar_add")
    asm.bne("t3", "s9", f"{prefix}_bar_wait")
    asm.sd("zero", "t5", 0)                  # last: reset count...
    asm.li("t5", MT_BAR_GEN)
    asm.addi("t2", "t2", 1)
    asm.sd("t2", "t5", 0)                    # ...then open the gate
    asm.j(f"{prefix}_bar_done")
    asm.label(f"{prefix}_bar_wait")
    asm.li("t5", MT_BAR_GEN)
    asm.label(f"{prefix}_bar_spin")
    asm.ld("t3", "t5", 0)
    asm.beq("t3", "t2", f"{prefix}_bar_spin")
    asm.label(f"{prefix}_bar_done")
