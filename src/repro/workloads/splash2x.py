"""SPLASH-2x-like guest kernels.

Five kernels mirroring the SPLASH-2x applications the paper runs:

- **water_nsquared** — O(n²) pairwise molecular forces (the paper's
  representative workload for its Top-Down analysis).
- **water_spatial** — the same physics with cell-list binning.
- **ocean_cp / ocean_ncp** — red-black grid relaxation with contiguous
  vs. non-contiguous partition traversal.
- **fmm** — hierarchical (tree) multipole-style up/down sweeps.
"""

from __future__ import annotations

from ..g5.isa import Assembler, Program
from .kernels import (
    DATA_BASE,
    emit_exit,
    emit_fill_linear,
    emit_load_const_f,
)
from .mt import (
    MT_PARTIALS,
    check_threads,
    emit_barrier,
    emit_join_workers,
    emit_mt_init,
    emit_spawn_workers,
    emit_worker_prologue,
)


def build_water_nsquared(n_molecules: int = 40, steps: int = 2) -> Program:
    """Pairwise force computation over ``n_molecules`` 1-D molecules.

    For each pair (i, j>i): r = |x_i - x_j| (fsqrt of the square keeps
    the FP pipe busy), potential += 1/(r + 1).  Exit code is the integer
    part of the accumulated potential.
    """
    if n_molecules < 2 or steps <= 0:
        raise ValueError("need >=2 molecules and >=1 step")
    asm = Assembler(base=0x1000)
    pos = DATA_BASE

    asm.li("s0", pos)
    asm.li("t4", n_molecules)
    emit_fill_linear(asm, "s0", "t4", 8, "wn")

    emit_load_const_f(asm, "f20", 0)       # potential
    emit_load_const_f(asm, "f24", 1)       # 1.0
    asm.m5_work_begin()
    asm.li("s5", 0)                        # step
    asm.label("step")
    asm.li("s1", 0)                        # i
    asm.label("outer")
    asm.addi("s2", "s1", 1)                # j = i + 1
    asm.label("inner")
    asm.slli("t0", "s1", 3)
    asm.add("t0", "t0", "s0")
    asm.fld("f0", "t0", 0)
    asm.slli("t1", "s2", 3)
    asm.add("t1", "t1", "s0")
    asm.fld("f1", "t1", 0)
    asm.fsub("f2", "f0", "f1")
    asm.fmul("f3", "f2", "f2")
    asm.fsqrt("f3", "f3")                  # |dx|
    asm.fadd("f3", "f3", "f24")
    asm.fdiv("f4", "f24", "f3")            # 1/(r+1)
    asm.fadd("f20", "f20", "f4")
    asm.addi("s2", "s2", 1)
    asm.li("t3", n_molecules)
    asm.blt("s2", "t3", "inner")
    asm.addi("s1", "s1", 1)
    asm.li("t3", n_molecules - 1)
    asm.blt("s1", "t3", "outer")
    asm.addi("s5", "s5", 1)
    asm.li("t3", steps)
    asm.blt("s5", "t3", "step")
    asm.m5_work_end()

    asm.fcvt_l_d("a0", "f20")
    emit_exit(asm)
    return asm.assemble()


def build_water_spatial(n_molecules: int = 64, n_cells: int = 8,
                        steps: int = 2) -> Program:
    """Cell-binned force computation (water_spatial's structure).

    Molecules are binned round-robin into cells; each step walks every
    cell and accumulates interactions only within the cell, giving the
    indexed, two-level memory access pattern of the spatial variant.
    Exit code is the integer part of the potential.
    """
    if n_molecules < 2 or n_cells <= 0 or steps <= 0:
        raise ValueError("bad water_spatial parameters")
    per_cell = (n_molecules + n_cells - 1) // n_cells
    asm = Assembler(base=0x1000)
    pos = DATA_BASE
    cells = DATA_BASE + n_molecules * 8          # cell -> molecule indices

    asm.li("s0", pos)
    asm.li("t4", n_molecules)
    emit_fill_linear(asm, "s0", "t4", 8, "ws")

    # Bin molecule m into cells[m % n_cells][m / n_cells].
    asm.li("s1", cells)
    asm.li("t0", 0)
    asm.label("bin")
    asm.li("t1", n_cells)
    asm.rem("t2", "t0", "t1")                    # cell index
    asm.div("t3", "t0", "t1")                    # slot within cell
    asm.li("t1", per_cell)
    asm.mul("t2", "t2", "t1")
    asm.add("t2", "t2", "t3")
    asm.slli("t2", "t2", 3)
    asm.add("t2", "t2", "s1")
    asm.sd("t0", "t2", 0)
    asm.addi("t0", "t0", 1)
    asm.li("t1", n_molecules)
    asm.blt("t0", "t1", "bin")

    emit_load_const_f(asm, "f20", 0)             # potential
    emit_load_const_f(asm, "f24", 1)             # 1.0
    asm.m5_work_begin()
    asm.li("s6", 0)                              # step
    asm.label("step")
    asm.li("s2", 0)                              # cell
    asm.label("cell")
    asm.li("s3", 0)                              # slot a
    asm.label("slota")
    asm.addi("s4", "s3", 1)                      # slot b
    asm.label("slotb")
    # molecule indices from the cell table
    asm.li("t0", per_cell)
    asm.mul("t1", "s2", "t0")
    asm.add("t2", "t1", "s3")
    asm.slli("t2", "t2", 3)
    asm.add("t2", "t2", "s1")
    asm.ld("t3", "t2", 0)                        # m_a
    asm.add("t2", "t1", "s4")
    asm.slli("t2", "t2", 3)
    asm.add("t2", "t2", "s1")
    asm.ld("t4", "t2", 0)                        # m_b
    asm.slli("t3", "t3", 3)
    asm.add("t3", "t3", "s0")
    asm.fld("f0", "t3", 0)
    asm.slli("t4", "t4", 3)
    asm.add("t4", "t4", "s0")
    asm.fld("f1", "t4", 0)
    asm.fsub("f2", "f0", "f1")
    asm.fmul("f3", "f2", "f2")
    asm.fadd("f3", "f3", "f24")
    asm.fdiv("f4", "f24", "f3")
    asm.fadd("f20", "f20", "f4")
    asm.addi("s4", "s4", 1)
    asm.li("t0", per_cell)
    asm.blt("s4", "t0", "slotb")
    asm.addi("s3", "s3", 1)
    asm.li("t0", per_cell - 1)
    asm.blt("s3", "t0", "slota")
    asm.addi("s2", "s2", 1)
    asm.li("t0", n_cells)
    asm.blt("s2", "t0", "cell")
    asm.addi("s6", "s6", 1)
    asm.li("t0", steps)
    asm.blt("s6", "t0", "step")
    asm.m5_work_end()

    asm.fcvt_l_d("a0", "f20")
    emit_exit(asm)
    return asm.assemble()


def _build_ocean(grid: int, sweeps: int, row_major: bool) -> Program:
    """Shared body of the two ocean variants: 5-point stencil relaxation."""
    if grid < 3 or sweeps <= 0:
        raise ValueError("grid must be >=3 with >=1 sweep")
    asm = Assembler(base=0x1000)
    field = DATA_BASE
    row_bytes = grid * 8

    asm.li("s0", field)
    asm.li("t4", grid * grid)
    emit_fill_linear(asm, "s0", "t4", 8, "oc")

    emit_load_const_f(asm, "f24", 1, 4)          # 0.25
    asm.m5_work_begin()
    asm.li("s5", 0)                              # sweep counter
    asm.label("sweep")
    asm.li("s1", 1)                              # outer index (1..grid-2)
    asm.label("outer")
    asm.li("s2", 1)                              # inner index
    asm.label("inner")
    if row_major:
        row_reg, col_reg = "s1", "s2"
    else:
        row_reg, col_reg = "s2", "s1"            # column-major: strided
    asm.li("t0", grid)
    asm.mul("t1", row_reg, "t0")
    asm.add("t1", "t1", col_reg)
    asm.slli("t1", "t1", 3)
    asm.add("t1", "t1", "s0")                    # &u[r][c]
    asm.fld("f0", "t1", -8)                      # left
    asm.fld("f1", "t1", 8)                       # right
    asm.li("t2", row_bytes)
    asm.sub("t3", "t1", "t2")
    asm.fld("f2", "t3", 0)                       # up
    asm.add("t3", "t1", "t2")
    asm.fld("f3", "t3", 0)                       # down
    asm.fadd("f0", "f0", "f1")
    asm.fadd("f0", "f0", "f2")
    asm.fadd("f0", "f0", "f3")
    asm.fmul("f0", "f0", "f24")
    asm.fsd("f0", "t1", 0)
    asm.addi("s2", "s2", 1)
    asm.li("t0", grid - 1)
    asm.blt("s2", "t0", "inner")
    asm.addi("s1", "s1", 1)
    asm.li("t0", grid - 1)
    asm.blt("s1", "t0", "outer")
    asm.addi("s5", "s5", 1)
    asm.li("t0", sweeps)
    asm.blt("s5", "t0", "sweep")
    asm.m5_work_end()

    # checksum: centre cell
    asm.li("t0", grid)
    asm.li("t1", grid // 2)
    asm.mul("t0", "t0", "t1")
    asm.add("t0", "t0", "t1")
    asm.slli("t0", "t0", 3)
    asm.add("t0", "t0", "s0")
    asm.fld("f0", "t0", 0)
    asm.fcvt_l_d("a0", "f0")
    emit_exit(asm)
    return asm.assemble()


def build_ocean_cp(grid: int = 18, sweeps: int = 3) -> Program:
    """Ocean with contiguous partitions: row-major stencil sweeps."""
    return _build_ocean(grid, sweeps, row_major=True)


def build_ocean_ncp(grid: int = 18, sweeps: int = 3) -> Program:
    """Ocean with non-contiguous partitions: column-major (strided)."""
    return _build_ocean(grid, sweeps, row_major=False)


def build_water_nsquared_mt(n_molecules: int, steps: int,
                            threads: int) -> Program:
    """Threaded water_nsquared: outer rows strided across threads.

    Worker ``k`` accumulates the pair potential for rows ``i`` with
    ``i % threads == k`` (striding balances the triangular pair count),
    stores its partial into its ``MT_PARTIALS`` slot, and exits; the
    main thread computes its own slice, joins, and reduces the partials
    serially in worker-index order, so the result is deterministic per
    thread count.  At one thread the accumulation order is exactly the
    serial kernel's.
    """
    if n_molecules < 2 or steps <= 0:
        raise ValueError("need >=2 molecules and >=1 step")
    check_threads(threads)
    asm = Assembler(base=0x1000)
    pos = DATA_BASE

    asm.li("s0", pos)
    asm.li("t4", n_molecules)
    emit_fill_linear(asm, "s0", "t4", 8, "wn")

    emit_mt_init(asm, threads)
    emit_load_const_f(asm, "f20", 0)       # potential
    emit_load_const_f(asm, "f24", 1)       # 1.0
    asm.m5_work_begin()
    emit_spawn_workers(asm, threads)
    asm.call("wn_slice")                   # main = worker 0
    emit_join_workers(asm, threads, "wn")

    # serial reduction in worker-index order
    emit_load_const_f(asm, "f20", 0)
    asm.li("t0", MT_PARTIALS)
    asm.li("t2", 0)
    asm.label("wn_reduce")
    asm.slli("t1", "t2", 3)
    asm.add("t1", "t1", "t0")
    asm.fld("f0", "t1", 0)
    asm.fadd("f20", "f20", "f0")
    asm.addi("t2", "t2", 1)
    asm.li("t3", threads)
    asm.blt("t2", "t3", "wn_reduce")
    asm.m5_work_end()
    asm.fcvt_l_d("a0", "f20")
    emit_exit(asm)

    # worker: same slice subroutine with its own FP state
    emit_worker_prologue(asm, threads)
    asm.li("s0", pos)
    emit_load_const_f(asm, "f20", 0)
    emit_load_const_f(asm, "f24", 1)
    asm.call("wn_slice")
    asm.m5_thread_exit()
    asm.halt()

    # wn_slice: rows i = s10, s10+s9, ... of the pair triangle
    asm.label("wn_slice")
    asm.li("s5", 0)                        # step
    asm.label("step")
    asm.mv("s1", "s10")                    # i = worker index
    asm.label("outer")
    asm.li("t3", n_molecules - 1)
    asm.bge("s1", "t3", "outer_done")
    asm.addi("s2", "s1", 1)                # j = i + 1
    asm.label("inner")
    asm.slli("t0", "s1", 3)
    asm.add("t0", "t0", "s0")
    asm.fld("f0", "t0", 0)
    asm.slli("t1", "s2", 3)
    asm.add("t1", "t1", "s0")
    asm.fld("f1", "t1", 0)
    asm.fsub("f2", "f0", "f1")
    asm.fmul("f3", "f2", "f2")
    asm.fsqrt("f3", "f3")                  # |dx|
    asm.fadd("f3", "f3", "f24")
    asm.fdiv("f4", "f24", "f3")            # 1/(r+1)
    asm.fadd("f20", "f20", "f4")
    asm.addi("s2", "s2", 1)
    asm.li("t3", n_molecules)
    asm.blt("s2", "t3", "inner")
    asm.add("s1", "s1", "s9")
    asm.j("outer")
    asm.label("outer_done")
    asm.addi("s5", "s5", 1)
    asm.li("t3", steps)
    asm.blt("s5", "t3", "step")
    # publish the partial into this worker's slot
    asm.li("t0", MT_PARTIALS)
    asm.slli("t1", "s10", 3)
    asm.add("t0", "t0", "t1")
    asm.fsd("f20", "t0", 0)
    asm.ret()
    return asm.assemble()


def build_ocean_cp_mt(grid: int, sweeps: int, threads: int) -> Program:
    """Threaded ocean (contiguous partitions): double-buffered Jacobi.

    Unlike the serial kernel's in-place sweeps, the threaded variant
    relaxes from a source into a destination buffer and swaps them each
    sweep, with a full barrier between sweeps.  Every interior cell is
    written by exactly one thread and read only from the quiescent
    source buffer, so the final field — and the centre-cell exit code —
    is bit-identical for *any* thread count (the one-thread run is the
    reference the differential tests compare against).  Interior rows
    are split into contiguous blocks, matching ocean_cp's partitioning.
    """
    if grid < 3 or sweeps <= 0:
        raise ValueError("grid must be >=3 with >=1 sweep")
    check_threads(threads)
    asm = Assembler(base=0x1000)
    field_a = DATA_BASE
    field_b = DATA_BASE + grid * grid * 8
    row_bytes = grid * 8
    rows_per = (grid - 2 + threads - 1) // threads
    # sweep s reads A and writes B when s is even; the last sweep's
    # destination holds the final field
    final_field = field_b if sweeps % 2 == 1 else field_a

    # identical linear init in both buffers: boundary rows/columns are
    # never rewritten, so both buffers must agree on them
    asm.li("s0", field_a)
    asm.li("t4", grid * grid)
    emit_fill_linear(asm, "s0", "t4", 8, "oca")
    asm.li("s1", field_b)
    asm.li("t4", grid * grid)
    emit_fill_linear(asm, "s1", "t4", 8, "ocb")

    emit_mt_init(asm, threads)
    emit_load_const_f(asm, "f24", 1, 4)          # 0.25
    asm.m5_work_begin()
    emit_spawn_workers(asm, threads)
    asm.call("oc_bounds")
    asm.call("oc_slice")                         # main = worker 0
    emit_join_workers(asm, threads, "oc")
    asm.m5_work_end()

    # checksum: centre cell of the final buffer
    asm.li("t0", grid)
    asm.li("t1", grid // 2)
    asm.mul("t0", "t0", "t1")
    asm.add("t0", "t0", "t1")
    asm.slli("t0", "t0", 3)
    asm.li("t1", final_field)
    asm.add("t0", "t0", "t1")
    asm.fld("f0", "t0", 0)
    asm.fcvt_l_d("a0", "f0")
    emit_exit(asm)

    # worker
    emit_worker_prologue(asm, threads)
    asm.li("s0", field_a)
    asm.li("s1", field_b)
    emit_load_const_f(asm, "f24", 1, 4)
    asm.call("oc_bounds")
    asm.call("oc_slice")
    asm.m5_thread_exit()
    asm.halt()

    # oc_bounds: s8 = 1 + s10*rows_per, s7 = min(s8+rows_per, grid-1)
    asm.label("oc_bounds")
    asm.li("t0", rows_per)
    asm.mul("s8", "s10", "t0")
    asm.addi("s8", "s8", 1)
    asm.add("s7", "s8", "t0")
    asm.li("t1", grid - 1)
    asm.blt("s7", "t1", "oc_bounds_ok")
    asm.mv("s7", "t1")
    asm.label("oc_bounds_ok")
    asm.ret()

    # oc_slice: all sweeps over rows [s8, s7), barrier between sweeps
    asm.label("oc_slice")
    asm.li("s6", 0)                              # sweep counter
    asm.label("oc_sweep")
    asm.andi("t0", "s6", 1)
    asm.bne("t0", "zero", "oc_ba")
    asm.mv("s4", "s0")                           # even sweep: A -> B
    asm.mv("s5", "s1")
    asm.j("oc_go")
    asm.label("oc_ba")
    asm.mv("s4", "s1")                           # odd sweep: B -> A
    asm.mv("s5", "s0")
    asm.label("oc_go")
    asm.mv("s2", "s8")                           # row
    asm.label("oc_row")
    asm.bge("s2", "s7", "oc_rows_done")
    asm.li("s3", 1)                              # column
    asm.label("oc_col")
    asm.li("t0", grid)
    asm.mul("t1", "s2", "t0")
    asm.add("t1", "t1", "s3")
    asm.slli("t1", "t1", 3)                      # cell offset
    asm.add("t2", "t1", "s4")                    # &src[r][c]
    asm.fld("f0", "t2", -8)                      # left
    asm.fld("f1", "t2", 8)                       # right
    asm.li("t3", row_bytes)
    asm.sub("t4", "t2", "t3")
    asm.fld("f2", "t4", 0)                       # up
    asm.add("t4", "t2", "t3")
    asm.fld("f3", "t4", 0)                       # down
    asm.fadd("f0", "f0", "f1")
    asm.fadd("f0", "f0", "f2")
    asm.fadd("f0", "f0", "f3")
    asm.fmul("f0", "f0", "f24")
    asm.add("t2", "t1", "s5")                    # &dst[r][c]
    asm.fsd("f0", "t2", 0)
    asm.addi("s3", "s3", 1)
    asm.li("t0", grid - 1)
    asm.blt("s3", "t0", "oc_col")
    asm.addi("s2", "s2", 1)
    asm.j("oc_row")
    asm.label("oc_rows_done")
    emit_barrier(asm, "oc_sw")
    asm.addi("s6", "s6", 1)
    asm.li("t0", sweeps)
    asm.blt("s6", "t0", "oc_sweep")
    asm.ret()
    return asm.assemble()


def build_fmm(levels: int = 7, rounds: int = 2) -> Program:
    """Fast-multipole-style tree sweeps over an implicit binary tree.

    The tree of ``2**levels - 1`` nodes lives in an array.  Each round
    does an upward accumulation (parents gather children) followed by a
    downward pass (children receive a parent share), matching FMM's
    upward/downward traversal pattern.  Exit code is the root value
    modulo 2^31.
    """
    if levels < 2 or rounds <= 0:
        raise ValueError("need >=2 levels and >=1 round")
    n_nodes = (1 << levels) - 1
    asm = Assembler(base=0x1000)
    tree = DATA_BASE

    # node[i] = i + 1 (integers)
    asm.li("s0", tree)
    asm.li("t0", 0)
    asm.label("init")
    asm.slli("t1", "t0", 3)
    asm.add("t1", "t1", "s0")
    asm.addi("t2", "t0", 1)
    asm.sd("t2", "t1", 0)
    asm.addi("t0", "t0", 1)
    asm.li("t3", n_nodes)
    asm.blt("t0", "t3", "init")

    first_leaf = (1 << (levels - 1)) - 1
    asm.m5_work_begin()
    asm.li("s5", 0)                              # round counter
    asm.label("round")
    # upward: for i from first_leaf-1 down to 0: n[i] += n[2i+1] + n[2i+2]
    asm.li("s1", first_leaf - 1)
    asm.label("up")
    asm.slli("t0", "s1", 3)
    asm.add("t0", "t0", "s0")
    asm.ld("t1", "t0", 0)
    asm.slli("t2", "s1", 1)
    asm.addi("t2", "t2", 1)                      # left child index
    asm.slli("t3", "t2", 3)
    asm.add("t3", "t3", "s0")
    asm.ld("t4", "t3", 0)
    asm.ld("t5", "t3", 8)                        # right child (adjacent)
    asm.add("t1", "t1", "t4")
    asm.add("t1", "t1", "t5")
    asm.li("t6", 0x7FFFFFFF)
    asm.and_("t1", "t1", "t6")
    asm.sd("t1", "t0", 0)
    asm.addi("s1", "s1", -1)
    asm.bge("s1", "zero", "up")
    # downward: for i in 1..n_nodes-1: n[i] += n[(i-1)/2] >> 1
    asm.li("s1", 1)
    asm.label("down")
    asm.addi("t0", "s1", -1)
    asm.srli("t0", "t0", 1)                      # parent index
    asm.slli("t0", "t0", 3)
    asm.add("t0", "t0", "s0")
    asm.ld("t1", "t0", 0)
    asm.srli("t1", "t1", 1)
    asm.slli("t2", "s1", 3)
    asm.add("t2", "t2", "s0")
    asm.ld("t3", "t2", 0)
    asm.add("t3", "t3", "t1")
    asm.li("t6", 0x7FFFFFFF)
    asm.and_("t3", "t3", "t6")
    asm.sd("t3", "t2", 0)
    asm.addi("s1", "s1", 1)
    asm.li("t4", n_nodes)
    asm.blt("s1", "t4", "down")
    asm.addi("s5", "s5", 1)
    asm.li("t4", rounds)
    asm.blt("s5", "t4", "round")
    asm.m5_work_end()

    asm.ld("a0", "s0", 0)
    emit_exit(asm)
    return asm.assemble()
