"""SPEC CPU2017 reference workloads (host-level synthetics).

The paper runs three SPEC benchmarks on *bare metal* (never on gem5) as
a contrast to gem5's host profile in Figs. 2–6:

- **525.x264_r** — the highest-IPC benchmark in the suite: small, loopy
  code with a cache-resident working set and near-total µop-cache reuse;
- **531.deepsjeng_r** — large memory footprint, the suite's highest L3
  miss rate;
- **505.mcf_r** — the lowest IPC: pointer chasing over a huge working
  set (heavily back-end bound) plus hard data-dependent branches.

Each synthetic builds its own small binary image and a deterministic
invocation trace; the same :class:`~repro.host.cpu.HostCPU` replays it,
so gem5 and SPEC numbers come out of the *same* host model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..host.binary import BinaryImage, synthetic_image

#: Data-segment base for SPEC working sets (clear of the text segment).
SPEC_DATA_BASE = 0x4000_0000

_LCG_MUL = 6364136223846793005
_LCG_INC = 1442695040888963407
_MASK = (1 << 64) - 1


@dataclass
class SyntheticHostWorkload:
    """A host-level workload: binary image + invocation trace."""

    name: str
    image: BinaryImage
    trace_fns: list[int]
    trace_daddrs: list[int]
    fn_names: list[str]


def _interleave(weights: dict[str, int], n_records: int,
                seed: int) -> list[str]:
    """Deterministic weighted round-robin over logical function names."""
    expanded = [name for name, weight in weights.items()
                for _ in range(weight)]
    state = seed & _MASK
    names = []
    for _ in range(n_records):
        state = (state * _LCG_MUL + _LCG_INC) & _MASK
        names.append(expanded[(state >> 33) % len(expanded)])
    return names


def _assemble(name: str, image: BinaryImage, logical_names: list[str],
              daddrs: list[int]) -> SyntheticHostWorkload:
    fn_names = ["<reserved>"] + sorted(set(logical_names))
    ids = {fn_name: index for index, fn_name in enumerate(fn_names)}
    return SyntheticHostWorkload(
        name=name,
        image=image,
        trace_fns=[ids[n] for n in logical_names],
        trace_daddrs=daddrs,
        fn_names=fn_names,
    )


def build_x264(n_records: int = 40000, seed: int = 525) -> SyntheticHostWorkload:
    """525.x264_r: loopy kernels over a cache-resident frame slice."""
    if n_records <= 0:
        raise ValueError("n_records must be positive")
    image = synthetic_image([
        # (name, subfns, mean bytes, hot fraction, loopy)
        ("x264::pixel_sad", 4, 180, 0.75, True),
        ("x264::me_search", 6, 240, 0.6, True),
        ("x264::dct4x4", 4, 200, 0.75, True),
        ("x264::quant", 3, 160, 0.8, True),
        ("x264::cabac_encode", 5, 220, 0.6, True),
        ("x264::deblock", 4, 200, 0.75, True),
    ], seed=seed)
    logical = _interleave({
        "x264::pixel_sad": 5, "x264::me_search": 4, "x264::dct4x4": 3,
        "x264::quant": 2, "x264::cabac_encode": 2, "x264::deblock": 1,
    }, n_records, seed)
    # Working set: one macroblock row (~24KB), streamed repeatedly.
    working_set = 24 * 1024
    daddrs = []
    cursor = 0
    for _ in range(n_records):
        cursor = (cursor + 64) % working_set
        daddrs.append(SPEC_DATA_BASE + cursor)
    return _assemble("525.x264_r", image, logical, daddrs)


def build_deepsjeng(n_records: int = 40000,
                    seed: int = 531) -> SyntheticHostWorkload:
    """531.deepsjeng_r: tree search with a huge transposition table."""
    if n_records <= 0:
        raise ValueError("n_records must be positive")
    image = synthetic_image([
        ("sjeng::search", 10, 300, 0.4, False),
        ("sjeng::evaluate", 8, 340, 0.5, True),
        ("sjeng::movegen", 6, 260, 0.5, True),
        ("sjeng::tt_probe", 4, 180, 0.75, False),
        ("sjeng::make_move", 5, 200, 0.6, True),
    ], seed=seed)
    logical = _interleave({
        "sjeng::search": 4, "sjeng::evaluate": 4, "sjeng::movegen": 3,
        "sjeng::tt_probe": 3, "sjeng::make_move": 2,
    }, n_records, seed)
    # 64MB transposition table probed at random: the suite's highest L3
    # miss rate.
    table_bytes = 64 * 1024 * 1024
    daddrs = []
    state = seed & _MASK
    for _ in range(n_records):
        state = (state * _LCG_MUL + _LCG_INC) & _MASK
        daddrs.append(SPEC_DATA_BASE + ((state >> 24) % table_bytes & ~0x3F))
    return _assemble("531.deepsjeng_r", image, logical, daddrs)


def build_mcf(n_records: int = 40000, seed: int = 505) -> SyntheticHostWorkload:
    """505.mcf_r: pointer chasing over ~½GB; lowest IPC in the suite."""
    if n_records <= 0:
        raise ValueError("n_records must be positive")
    image = synthetic_image([
        ("mcf::refresh_potential", 4, 220, 0.5, False),
        ("mcf::price_out_impl", 5, 280, 0.4, False),
        ("mcf::primal_bea_mpp", 6, 300, 0.35, False),
        ("mcf::sort_basket", 3, 180, 0.7, True),
    ], seed=seed, branch_hostility=0.5)
    logical = _interleave({
        "mcf::refresh_potential": 3, "mcf::price_out_impl": 3,
        "mcf::primal_bea_mpp": 3, "mcf::sort_basket": 1,
    }, n_records, seed)
    # Pointer chases over a 512MB arc network: nearly every access
    # misses the whole hierarchy.
    arena = 512 * 1024 * 1024
    daddrs = []
    state = (seed * 2654435761) & _MASK
    for _ in range(n_records):
        state = (state * _LCG_MUL + _LCG_INC) & _MASK
        daddrs.append(SPEC_DATA_BASE + ((state >> 16) % arena & ~0x3F))
    return _assemble("505.mcf_r", image, logical, daddrs)


SPEC_BUILDERS = {
    "525.x264_r": build_x264,
    "531.deepsjeng_r": build_deepsjeng,
    "505.mcf_r": build_mcf,
}

SPEC_NAMES = list(SPEC_BUILDERS)


def build_spec(name: str, n_records: int = 40000) -> SyntheticHostWorkload:
    """Build one of the three SPEC synthetics by its paper name."""
    try:
        builder = SPEC_BUILDERS[name]
    except KeyError:
        raise KeyError(f"unknown SPEC workload {name!r}; choose from "
                       f"{SPEC_NAMES}") from None
    return builder(n_records=n_records)
