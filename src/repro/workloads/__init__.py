"""Guest workloads: PARSEC/SPLASH-2x-like kernels, Boot-Exit, sieve."""

from .bootexit import BANNER, build_boot_exit
from .registry import PARSEC_SPLASH_NAMES, SCALES, WORKLOADS, Workload, get_workload
from .sieve import build_sieve, prime_count_reference

__all__ = [
    "BANNER",
    "PARSEC_SPLASH_NAMES",
    "SCALES",
    "WORKLOADS",
    "Workload",
    "build_boot_exit",
    "build_sieve",
    "get_workload",
    "prime_count_reference",
]
