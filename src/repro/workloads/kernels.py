"""Shared building blocks for guest workload kernels.

Each workload is a SimRISC program built with the
:class:`~repro.g5.isa.assembler.Assembler`.  This module provides the
recurring idioms: deterministic pseudo-random number generation in guest
registers, array initialisation loops, and the standard exit sequence.

Register conventions used by all kernels
----------------------------------------
``s11`` is reserved as the LCG state register; ``a0``/``a7`` are used by
the exit sequence.  Kernels otherwise follow the normal ABI.
"""

from __future__ import annotations

from ..g5.isa import Assembler

#: Guest data segment base: leaves plenty of room for program text.
DATA_BASE = 0x0010_0000

#: LCG multiplier/increment (Numerical Recipes), fits li's 32-bit range
#: when split; we use a 32-bit variant to keep constants loadable.
LCG_MUL = 1103515245
LCG_INC = 12345


def emit_exit(asm: Assembler, code_reg: str = "a0") -> None:
    """Exit via the SE-mode exit syscall and a trailing halt.

    The halt backstops FS-mode runs of the same kernel, where ecall is
    routed to firmware instead of syscall emulation.
    """
    if code_reg != "a0":
        asm.mv("a0", code_reg)
    asm.li("a7", 93)  # SYS_EXIT
    asm.ecall()
    asm.halt()


def emit_lcg_init(asm: Assembler, seed: int = 12345) -> None:
    """Seed the guest LCG (state lives in ``s11``)."""
    asm.li("s11", seed)


def emit_lcg_next(asm: Assembler, dst: str, modulus_reg: str) -> None:
    """dst = next_random() % modulus_reg; clobbers t5/t6.

    ``modulus_reg`` must hold a positive value.
    """
    asm.li("t5", LCG_MUL)
    asm.mul("s11", "s11", "t5")
    asm.li("t6", LCG_INC)
    asm.add("s11", "s11", "t6")
    # Keep the state positive 31-bit so rem behaves like C's unsigned mix.
    asm.srli("t5", "s11", 16)
    asm.li("t6", 0x7FFFFFFF)
    asm.and_("t5", "t5", "t6")
    asm.rem(dst, "t5", modulus_reg)


def emit_load_const_f(asm: Assembler, freg: str, numerator: int,
                      denominator: int = 1) -> None:
    """Load numerator/denominator into ``freg``; clobbers t5 and f31."""
    asm.li("t5", numerator)
    asm.fcvt_d_l(freg, "t5")
    if denominator != 1:
        asm.li("t5", denominator)
        asm.fcvt_d_l("f31", "t5")
        asm.fdiv(freg, freg, "f31")


def emit_fill_linear(asm: Assembler, base_reg: str, count_reg: str,
                     stride: int, label_prefix: str) -> None:
    """Fill count doubles at base with f(i) = i * 0.5 + 1.0.

    Clobbers t0, t1, f0, f1, f2.  ``base_reg`` is preserved.
    """
    asm.li("t0", 0)
    asm.mv("t1", base_reg)
    asm.li("t2", 2)
    asm.fcvt_d_l("f1", "t2")       # 2.0
    asm.label(f"{label_prefix}_fill")
    asm.fcvt_d_l("f0", "t0")
    asm.fdiv("f0", "f0", "f1")     # i / 2.0
    asm.li("t2", 1)
    asm.fcvt_d_l("f2", "t2")
    asm.fadd("f0", "f0", "f2")     # + 1.0
    asm.fsd("f0", "t1", 0)
    asm.addi("t1", "t1", stride)
    asm.addi("t0", "t0", 1)
    asm.blt("t0", count_reg, f"{label_prefix}_fill")


def emit_fill_bytes(asm: Assembler, base_reg: str, count_reg: str,
                    label_prefix: str) -> None:
    """Fill count bytes at base with a rolling pattern (i * 31 + 7) & 0xFF.

    Clobbers t0, t1, t2, t3.  ``base_reg`` is preserved.
    """
    asm.li("t0", 0)
    asm.mv("t1", base_reg)
    asm.label(f"{label_prefix}_fillb")
    asm.li("t2", 31)
    asm.mul("t2", "t0", "t2")
    asm.addi("t2", "t2", 7)
    asm.andi("t3", "t2", 0xFF)
    asm.sb("t3", "t1", 0)
    asm.addi("t1", "t1", 1)
    asm.addi("t0", "t0", 1)
    asm.blt("t0", count_reg, f"{label_prefix}_fillb")
