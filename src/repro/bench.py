"""Simulation-kernel microbenchmark: simulated instructions per host second.

This is the measurement harness behind ``repro-g5 bench`` and
``benchmarks/bench_kernel.py``.  For each CPU model it runs the same
workload twice — once with the fast-path kernel enabled
(``SimConfig(fast_path=True)``, the default) and once with it disabled —
and reports wall-clock time, simulated-insts/sec, and the resulting
speedup.  Both runs produce bit-identical architectural state and stats
(that equivalence is enforced by the differential test suite in
``tests/exec/``); this harness only measures host-side throughput.

Results are written as JSON (``BENCH_kernel.json`` by default) so CI can
archive them and gate on a minimum speedup.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Optional

from .g5.system import SimConfig, System, simulate
from .workloads.registry import get_workload

#: CPU models benchmarked by default, cheapest first.
DEFAULT_MODELS = ("atomic", "timing", "minor", "o3")


def _run_once(cpu_model: str, workload_name: str, scale: str,
              fast_path: bool) -> tuple[float, int]:
    """One simulation; returns (wall seconds, simulated instructions)."""
    workload = get_workload(workload_name)
    program = workload.build(scale)
    system = System(SimConfig(cpu_model=cpu_model, mode=workload.mode,
                              record=False, fast_path=fast_path))
    if workload.mode == "se":
        system.set_se_workload(program, process_name=workload_name)
    else:
        system.set_fs_workload(program)
    start = time.perf_counter()
    result = simulate(system)
    elapsed = time.perf_counter() - start
    return elapsed, result.sim_insts


def _bench_variant(cpu_model: str, workload_name: str, scale: str,
                   fast_path: bool, repeats: int) -> dict:
    """Best-of-``repeats`` timing for one (model, fast_path) variant."""
    best = float("inf")
    insts = 0
    for _ in range(repeats):
        elapsed, insts = _run_once(cpu_model, workload_name, scale,
                                   fast_path)
        best = min(best, elapsed)
    return {
        "seconds": round(best, 6),
        "sim_insts": insts,
        "insts_per_sec": round(insts / best) if best > 0 else 0,
    }


def bench_kernel(models=DEFAULT_MODELS, workload: str = "sieve",
                 scale: str = "simsmall", repeats: int = 3,
                 verbose: bool = True) -> dict:
    """Benchmark the simulation kernel fast path for each CPU model.

    Returns a JSON-serialisable dict; see module docstring for shape.
    """
    results: dict = {
        "benchmark": "kernel_fast_path",
        "workload": workload,
        "scale": scale,
        "repeats": repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "models": {},
    }
    for model in models:
        fast = _bench_variant(model, workload, scale, True, repeats)
        slow = _bench_variant(model, workload, scale, False, repeats)
        speedup = (fast["insts_per_sec"] / slow["insts_per_sec"]
                   if slow["insts_per_sec"] else 0.0)
        results["models"][model] = {
            "fast": fast,
            "slow": slow,
            "speedup": round(speedup, 3),
        }
        if verbose:
            print(f"{model:8s} fast {fast['insts_per_sec']:>10,d} i/s "
                  f"({fast['seconds']:.3f}s)  "
                  f"slow {slow['insts_per_sec']:>10,d} i/s "
                  f"({slow['seconds']:.3f}s)  "
                  f"speedup {speedup:.2f}x")
    return results


def write_results(results: dict, output: str) -> None:
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")


def check_min_speedup(results: dict, min_speedup: float,
                      model: str = "atomic") -> Optional[str]:
    """Return an error message if ``model`` missed ``min_speedup``."""
    entry = results["models"].get(model)
    if entry is None:
        return f"model {model!r} was not benchmarked"
    if entry["speedup"] < min_speedup:
        return (f"fast-path speedup on {model} is {entry['speedup']:.2f}x, "
                f"below the required {min_speedup:.2f}x")
    return None
