"""Simulation-kernel microbenchmark: simulated instructions per host second.

This is the measurement harness behind ``repro-g5 bench`` and
``benchmarks/bench_kernel.py``.  For each CPU model it runs the same
workload twice — once with the fast-path kernel enabled
(``SimConfig(fast_path=True)``, the default) and once with it disabled —
and reports wall-clock time, simulated-insts/sec, and the resulting
speedup.  Both runs produce bit-identical architectural state and stats
(that equivalence is enforced by the differential test suite in
``tests/exec/``); this harness only measures host-side throughput.

Results are written as JSON (``BENCH_kernel.json`` by default) so CI can
archive them and gate on a minimum speedup.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Optional

from .g5.system import SimConfig, System, simulate
from .workloads.registry import get_workload

#: CPU models benchmarked by default, cheapest first.
DEFAULT_MODELS = ("atomic", "timing", "minor", "o3")


def _run_once(cpu_model: str, workload_name: str, scale: str,
              fast_path: bool) -> tuple[float, int]:
    """One simulation; returns (wall seconds, simulated instructions)."""
    workload = get_workload(workload_name)
    program = workload.build(scale)
    system = System(SimConfig(cpu_model=cpu_model, mode=workload.mode,
                              record=False, fast_path=fast_path))
    if workload.mode == "se":
        system.set_se_workload(program, process_name=workload_name)
    else:
        system.set_fs_workload(program)
    start = time.perf_counter()
    result = simulate(system)
    elapsed = time.perf_counter() - start
    return elapsed, result.sim_insts


def _bench_variant(cpu_model: str, workload_name: str, scale: str,
                   fast_path: bool, repeats: int) -> dict:
    """Best-of-``repeats`` timing for one (model, fast_path) variant."""
    best = float("inf")
    insts = 0
    for _ in range(repeats):
        elapsed, insts = _run_once(cpu_model, workload_name, scale,
                                   fast_path)
        best = min(best, elapsed)
    return {
        "seconds": round(best, 6),
        "sim_insts": insts,
        "insts_per_sec": round(insts / best) if best > 0 else 0,
    }


def bench_kernel(models=DEFAULT_MODELS, workload: str = "sieve",
                 scale: str = "simsmall", repeats: int = 3,
                 verbose: bool = True) -> dict:
    """Benchmark the simulation kernel fast path for each CPU model.

    Returns a JSON-serialisable dict; see module docstring for shape.
    """
    results: dict = {
        "benchmark": "kernel_fast_path",
        "workload": workload,
        "scale": scale,
        "repeats": repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "models": {},
    }
    for model in models:
        fast = _bench_variant(model, workload, scale, True, repeats)
        slow = _bench_variant(model, workload, scale, False, repeats)
        speedup = (fast["insts_per_sec"] / slow["insts_per_sec"]
                   if slow["insts_per_sec"] else 0.0)
        results["models"][model] = {
            "fast": fast,
            "slow": slow,
            "speedup": round(speedup, 3),
        }
        if verbose:
            print(f"{model:8s} fast {fast['insts_per_sec']:>10,d} i/s "
                  f"({fast['seconds']:.3f}s)  "
                  f"slow {slow['insts_per_sec']:>10,d} i/s "
                  f"({slow['seconds']:.3f}s)  "
                  f"speedup {speedup:.2f}x")
    return results


def _sharded_run(workload_name: str, scale: str, domains: int,
                 reference: bool = False, record: bool = False,
                 timed: bool = True) -> dict:
    """One Timing-mode run; returns timing, result, and state digest.

    ``domains > 1`` builds the sharded engine; ``reference=True`` keeps
    one queue but routes cross-domain traffic through the same boundary
    links — the single-queue partner every sharded run must match byte
    for byte.  When the run is sharded and ``timed``, a wall-clock timer
    is injected so the engine attributes host time to domains (the
    engine itself never reads the clock — determinism is its job, cost
    attribution is ours).
    """
    workload = get_workload(workload_name)
    program = workload.build(scale)
    system = System(SimConfig(cpu_model="timing", mode=workload.mode,
                              record=record, domains=domains,
                              boundary_reference=reference))
    if workload.mode == "se":
        system.set_se_workload(program, process_name=workload_name)
    else:
        system.set_fs_workload(program)
    if system.sharded is not None and timed:
        system.sharded.timer = time.perf_counter
    start = time.perf_counter()
    result = simulate(system)
    elapsed = time.perf_counter() - start
    doc = {
        "seconds": elapsed,
        "sim_insts": result.sim_insts,
        "digest": _state_digest(system, result),
        "sharding": result.sharding,
    }
    if system.sharded is not None:
        doc["busy_seconds"] = list(system.sharded.busy_seconds)
        doc["sync_seconds"] = system.sharded.sync_seconds
    return doc


def _state_digest(system, result) -> str:
    """SHA-256 over architectural state, stats.txt, and any trace.

    This is the bit-identity check the sharded gate enforces: two runs
    with equal digests committed the same registers, the same memory
    image, the same statistics, and (when tracing) the same execution
    records.
    """
    import hashlib
    import io

    from .g5.statsfile import write_stats

    hasher = hashlib.sha256()
    regs = system.cpu.regs
    hasher.update(repr((tuple(regs.ints), tuple(regs.floats),
                        regs.pc)).encode())
    pages = system.memctrl.memory._pages
    for page_num in sorted(pages):
        hasher.update(page_num.to_bytes(8, "little"))
        hasher.update(bytes(pages[page_num]))
    hasher.update(repr((result.exit_cause, result.exit_code,
                        result.sim_insts, result.sim_ticks)).encode())
    stream = io.StringIO()
    write_stats(system, stream)
    hasher.update(stream.getvalue().encode())
    recorder = result.recorder
    if len(recorder):
        hasher.update(repr(recorder.trace_fns).encode())
        hasher.update(repr(recorder.trace_daddrs).encode())
    return hasher.hexdigest()


def bench_sharded(domains: int = 2, workload: str = "sieve",
                  scale: str = "simsmall", repeats: int = 5,
                  verbose: bool = True) -> dict:
    """Benchmark sharded Timing simulation against the single queue.

    Measures the Timing-mode workload three ways: the plain single-queue
    engine, the sharded engine (``domains`` event queues under quantum
    sync), and the boundary-reference engine whose digest the sharded
    run must reproduce byte for byte.  Reports both the **measured**
    speedup (wall clock, one host thread — the GIL serialises the
    domains, so this hovers near 1x) and the **modeled** speedup: the
    single-queue time over the critical path a thread-per-domain host
    would see, ``max(per-domain busy) + sync overhead``.  The critical
    path is the measured sharded wall clock apportioned by a separate
    instrumented run's busy/sync fractions, so the instrumentation's own
    timer cost never flatters (or taxes) the model.  Because host-load
    noise moves both runs of an interleaved (single, sharded) pair
    together, the model takes the best pair ratio observed across the
    ``repeats`` (never worse than the best-of-N ratio) before dividing
    by the critical fraction.  Which basis gated the run is recorded as
    ``gate_basis``, mirroring ``BENCH_parallel.json``.
    """
    single_best: Optional[dict] = None
    sharded_best: Optional[dict] = None
    pair_ratios = []
    for _ in range(repeats):
        single = _sharded_run(workload, scale, domains=1)
        if single_best is None or single["seconds"] < single_best["seconds"]:
            single_best = single
        sharded = _sharded_run(workload, scale, domains=domains,
                               timed=False)
        if sharded_best is None \
                or sharded["seconds"] < sharded_best["seconds"]:
            sharded_best = sharded
        if sharded["seconds"] > 0:
            pair_ratios.append(single["seconds"] / sharded["seconds"])
    reference = _sharded_run(workload, scale, domains=1, reference=True,
                             record=True, timed=False)
    traced = _sharded_run(workload, scale, domains=domains, record=True,
                          timed=False)
    byte_identical = traced["digest"] == reference["digest"]

    # One instrumented run attributes host time to domains; its timer
    # overhead would bias the model, so only the *fractions* are used:
    # the measured (untimed) wall clock is apportioned by them.
    attributed = _sharded_run(workload, scale, domains=domains)
    shard = sharded_best["sharding"]
    busy = attributed["busy_seconds"]
    sync = attributed["sync_seconds"]
    attributed_total = sum(busy) + sync
    critical_fraction = ((max(busy) + sync) / attributed_total
                         if attributed_total > 0 else 1.0)
    critical_path = sharded_best["seconds"] * critical_fraction
    measured = (single_best["seconds"] / sharded_best["seconds"]
                if sharded_best["seconds"] > 0 else 0.0)
    # Host-load noise hits the single and sharded runs of a pair
    # together, so the best interleaved pair ratio is a steadier
    # estimate of single/sharded than the ratio of two independent
    # minima; the model uses whichever observation is least contended.
    best_ratio = max(pair_ratios + [measured]) if pair_ratios else measured
    modeled = (best_ratio / critical_fraction
               if critical_fraction > 0 else 0.0)
    insts = sharded_best["sim_insts"]
    results: dict = {
        "benchmark": "sharded_timing",
        "workload": workload,
        "scale": scale,
        "cpu_model": "timing",
        "domains": domains,
        "repeats": repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "single": {
            "seconds": round(single_best["seconds"], 6),
            "sim_insts": single_best["sim_insts"],
            "insts_per_sec": round(
                single_best["sim_insts"] / single_best["seconds"])
            if single_best["seconds"] > 0 else 0,
        },
        "sharded": {
            "seconds": round(sharded_best["seconds"], 6),
            "sim_insts": insts,
            "insts_per_sec": round(insts / sharded_best["seconds"])
            if sharded_best["seconds"] > 0 else 0,
            "events_per_domain": dict(zip(shard["domain_names"],
                                          shard["events_per_domain"])),
            "windows": shard["windows"],
            "deliveries": shard["deliveries"],
            "quantum_ticks": shard["quantum_ticks"],
            "busy_seconds": [round(s, 6) for s in busy],
            "sync_seconds": round(sync, 6),
            "critical_fraction": round(critical_fraction, 4),
            "critical_path_seconds": round(critical_path, 6),
        },
        "byte_identical": byte_identical,
        "pair_ratios": [round(ratio, 3) for ratio in pair_ratios],
        "speedup_measured": round(measured, 3),
        "speedup_modeled": round(modeled, 3),
    }
    if verbose:
        per_domain = ", ".join(
            f"{name} {count}" for name, count in
            results["sharded"]["events_per_domain"].items())
        print(f"single  {results['single']['insts_per_sec']:>10,d} i/s "
              f"({results['single']['seconds']:.3f}s)")
        print(f"sharded {results['sharded']['insts_per_sec']:>10,d} i/s "
              f"({results['sharded']['seconds']:.3f}s)  "
              f"events: {per_domain}")
        print(f"windows {shard['windows']}  deliveries "
              f"{shard['deliveries']}  sync {sync:.4f}s  "
              f"critical fraction {critical_fraction:.1%}")
        print(f"byte-identical to single-queue reference: "
              f"{byte_identical}")
        print(f"speedup measured {measured:.2f}x  "
              f"modeled {modeled:.2f}x "
              f"(best pair ratio {best_ratio:.2f}, critical path "
              f"{critical_path:.3f}s)")
    return results


def _multicore_run(workload_name: str, scale: str, cpu_model: str,
                   threads: int, domains: int = 1) -> dict:
    """One SE-mode run of the ``-n threads`` workload variant.

    Returns guest metrics (deterministic), the wall clock (host cost,
    informational), the summed L1D snoop counters, and the state digest
    used for the determinism gate.
    """
    workload = get_workload(workload_name)
    program = workload.build(scale, threads=threads)
    system = System(SimConfig(cpu_model=cpu_model, mode="se",
                              cores=max(1, threads), record=False,
                              domains=domains))
    process = system.set_se_workload(program, process_name=workload_name)
    start = time.perf_counter()
    result = simulate(system)
    elapsed = time.perf_counter() - start
    return {
        "seconds": elapsed,
        "sim_ticks": result.sim_ticks,
        "sim_insts": result.sim_insts,
        "exit_code": process.exit_code,
        "digest": _state_digest(system, result),
        "snoops": {
            "snoops": sum(c.stat_snoops.value()
                          for c in system.dcaches),
            "snoopInvalidates": sum(c.stat_snoop_invalidates.value()
                                    for c in system.dcaches),
            "snoopWritebacks": sum(c.stat_snoop_writebacks.value()
                                   for c in system.dcaches),
        },
    }


def bench_multicore(threads: int = 4, workload: str = "ocean_cp",
                    scale: str = "simsmall",
                    models=("atomic", "timing"), repeats: int = 3,
                    domains: int = 3, verbose: bool = True) -> dict:
    """Benchmark N-core guest runs against the 1-core reference.

    For each simple CPU model the ``-n threads`` workload variant runs
    on ``threads`` coherent cores and is compared with the 1-thread
    run three ways:

    - **guest speedup** — ``sim_ticks(1) / sim_ticks(threads)``, the
      simulated machine's strong scaling.  Fully deterministic (no
      host noise), so it is the gate's speedup basis;
    - **determinism** — the N-core digest must be byte-identical
      across a repeat run and across a ``domains``-sharded run (the
      differential suite's bar, re-checked on the benchmark
      configuration);
    - **correctness** — the guest exit code must match the 1-thread
      reference (the threaded kernels are interleaving-independent).

    Wall-clock seconds and the summed L1D snoop counters ride along as
    the host-cost and coherence-traffic context.
    """
    results: dict = {
        "benchmark": "multicore_guest",
        "workload": workload,
        "scale": scale,
        "threads": threads,
        "domains": domains,
        "repeats": repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "models": {},
    }
    for model in models:
        single_best: Optional[dict] = None
        multi_best: Optional[dict] = None
        for _ in range(repeats):
            single = _multicore_run(workload, scale, model, threads=1)
            if single_best is None \
                    or single["seconds"] < single_best["seconds"]:
                single_best = single
            multi = _multicore_run(workload, scale, model,
                                   threads=threads)
            if multi_best is None \
                    or multi["seconds"] < multi_best["seconds"]:
                multi_best = multi
        sharded = _multicore_run(workload, scale, model, threads=threads,
                                 domains=domains)
        deterministic = multi_best["digest"] == sharded["digest"]
        correct = multi_best["exit_code"] == single_best["exit_code"]
        guest_speedup = (single_best["sim_ticks"] / multi_best["sim_ticks"]
                         if multi_best["sim_ticks"] else 0.0)
        results["models"][model] = {
            "single": {
                "seconds": round(single_best["seconds"], 6),
                "sim_ticks": single_best["sim_ticks"],
                "sim_insts": single_best["sim_insts"],
                "exit_code": single_best["exit_code"],
            },
            "multi": {
                "seconds": round(multi_best["seconds"], 6),
                "sim_ticks": multi_best["sim_ticks"],
                "sim_insts": multi_best["sim_insts"],
                "exit_code": multi_best["exit_code"],
                "snoops": multi_best["snoops"],
            },
            "guest_speedup": round(guest_speedup, 3),
            "deterministic": deterministic,
            "correct": correct,
        }
        if verbose:
            snoops = multi_best["snoops"]
            print(f"{model:8s} 1-core {single_best['sim_ticks']:>12,d} "
                  f"ticks  {threads}-core "
                  f"{multi_best['sim_ticks']:>12,d} ticks  "
                  f"guest speedup {guest_speedup:.2f}x")
            print(f"{'':8s} snoops {snoops['snoops']}  invalidates "
                  f"{snoops['snoopInvalidates']}  writebacks "
                  f"{snoops['snoopWritebacks']}  deterministic "
                  f"{deterministic}  correct {correct}")
    return results


def check_multicore_gate(results: dict,
                         min_speedup: float) -> Optional[str]:
    """Gate a multicore-bench result; returns an error message or None.

    Determinism and guest correctness are non-negotiable for every
    model.  The speedup gate takes the best guest speedup across the
    benchmarked models (guest time is deterministic, so there is no
    host-noise fallback to model); the model that gated is recorded as
    ``gate_basis`` (``guest:<model>``), mirroring the other BENCH
    files.
    """
    basis_model, speedup = None, 0.0
    for model, entry in results["models"].items():
        if not entry["deterministic"]:
            results["gate_basis"] = f"guest:{model}"
            results["speedup"] = 0.0
            return (f"{model} {results['threads']}-core run is not "
                    "deterministic (repeat/sharded digests differ)")
        if not entry["correct"]:
            results["gate_basis"] = f"guest:{model}"
            results["speedup"] = 0.0
            return (f"{model} {results['threads']}-core guest exit code "
                    "diverged from the 1-core reference")
        if entry["guest_speedup"] > speedup:
            basis_model, speedup = model, entry["guest_speedup"]
    results["gate_basis"] = f"guest:{basis_model}"
    results["speedup"] = speedup
    if speedup < min_speedup:
        return (f"best guest speedup ({basis_model}) is {speedup:.2f}x, "
                f"below the required {min_speedup:.2f}x")
    return None


def check_sharded_gate(results: dict, min_speedup: float) -> Optional[str]:
    """Gate a sharded-bench result; returns an error message or None.

    Bit-identity is non-negotiable.  The speedup gate prefers the
    measured number when it clears the bar (a thread-per-domain host),
    and otherwise falls back to the modeled critical-path speedup; the
    basis actually used is recorded in ``results["gate_basis"]``.
    """
    measured = results["speedup_measured"]
    modeled = results["speedup_modeled"]
    if measured >= min_speedup:
        basis, speedup = "measured", measured
    else:
        basis, speedup = "modeled", modeled
    results["gate_basis"] = basis
    results["speedup"] = speedup
    if not results["byte_identical"]:
        return ("sharded run diverged from the single-queue reference "
                "(state digests differ)")
    if speedup < min_speedup:
        return (f"sharded {basis} speedup is {speedup:.2f}x, below the "
                f"required {min_speedup:.2f}x")
    return None


def write_results(results: dict, output: str) -> None:
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")


def check_min_speedup(results: dict, min_speedup: float,
                      model: str = "atomic") -> Optional[str]:
    """Return an error message if ``model`` missed ``min_speedup``."""
    entry = results["models"].get(model)
    if entry is None:
        return f"model {model!r} was not benchmarked"
    if entry["speedup"] < min_speedup:
        return (f"fast-path speedup on {model} is {entry['speedup']:.2f}x, "
                f"below the required {min_speedup:.2f}x")
    return None
