"""Discrete-event simulation kernel (the gem5 substrate's core).

Public surface:

- :mod:`repro.events.ticks` — tick/cycle conversion and clock domains.
- :class:`~repro.events.event.Event` and friends — schedulable work.
- :class:`~repro.events.queue.EventQueue` — the deterministic run loop.
- :class:`~repro.events.simobject.SimObject` — base class for models.
"""

from .event import (
    CPU_TICK_PRI,
    DEFAULT_PRI,
    LINK_PRI,
    SIM_EXIT_PRI,
    STAT_EVENT_PRI,
    CallbackEvent,
    Event,
    ExitEvent,
    PeriodicEvent,
)
from .queue import EventQueue, EventQueueError
from .simobject import Root, SimObject
from .ticks import (
    TICKS_PER_MS,
    TICKS_PER_NS,
    TICKS_PER_SECOND,
    TICKS_PER_US,
    ClockDomain,
    freq_to_period,
    seconds_to_ticks,
    ticks_to_seconds,
)

__all__ = [
    "CPU_TICK_PRI",
    "DEFAULT_PRI",
    "SIM_EXIT_PRI",
    "STAT_EVENT_PRI",
    "CallbackEvent",
    "ClockDomain",
    "Event",
    "EventQueue",
    "EventQueueError",
    "ExitEvent",
    "LINK_PRI",
    "PeriodicEvent",
    "Root",
    "SimObject",
    "TICKS_PER_MS",
    "TICKS_PER_NS",
    "TICKS_PER_SECOND",
    "TICKS_PER_US",
    "freq_to_period",
    "seconds_to_ticks",
    "ticks_to_seconds",
]
