"""Simulated-time bookkeeping, mirroring gem5's tick infrastructure.

gem5 measures simulated time in *ticks*; by convention one tick is one
picosecond, so a 1 GHz simulated clock has a period of 1000 ticks.  This
module provides the same vocabulary so CPU and memory models can be
written in terms of cycles while the event queue operates on ticks.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Ticks per simulated second (gem5 default: 1 tick = 1 ps).
TICKS_PER_SECOND = 10**12

#: Ticks per common sub-units, for readability at call sites.
TICKS_PER_MS = TICKS_PER_SECOND // 10**3
TICKS_PER_US = TICKS_PER_SECOND // 10**6
TICKS_PER_NS = TICKS_PER_SECOND // 10**9
TICKS_PER_PS = 1


def freq_to_period(freq_hz: float) -> int:
    """Return the clock period in ticks for a clock of ``freq_hz`` hertz."""
    if freq_hz <= 0:
        raise ValueError(f"clock frequency must be positive, got {freq_hz}")
    return max(1, round(TICKS_PER_SECOND / freq_hz))


def ticks_to_seconds(ticks: int) -> float:
    """Convert a tick count to simulated seconds."""
    return ticks / TICKS_PER_SECOND


def seconds_to_ticks(seconds: float) -> int:
    """Convert simulated seconds to a tick count."""
    if seconds < 0:
        raise ValueError(f"simulated time cannot be negative, got {seconds}")
    return round(seconds * TICKS_PER_SECOND)


@dataclass(frozen=True)
class ClockDomain:
    """A clock shared by one or more clocked objects.

    Mirrors gem5's ``ClockDomain``: objects attached to the domain convert
    between cycles and ticks through it, so changing the simulated
    frequency in one place rescales every attached model.
    """

    freq_hz: float

    def __post_init__(self) -> None:
        # The domain is frozen, so the period never changes; computing it
        # once here keeps cycles_to_ticks off the division path entirely
        # (it is called once per simulated instruction on the hot loop).
        object.__setattr__(self, "_period", freq_to_period(self.freq_hz))

    @property
    def period(self) -> int:
        """Clock period in ticks."""
        return self._period

    def cycles_to_ticks(self, cycles: int) -> int:
        """Ticks covered by ``cycles`` whole clock cycles."""
        if cycles < 0:
            raise ValueError(f"cycle count cannot be negative, got {cycles}")
        return cycles * self._period

    def ticks_to_cycles(self, ticks: int) -> int:
        """Whole cycles elapsed after ``ticks`` (rounded down)."""
        if ticks < 0:
            raise ValueError(f"tick count cannot be negative, got {ticks}")
        return ticks // self.period

    def next_cycle_edge(self, now: int) -> int:
        """First clock edge at or after tick ``now``."""
        period = self.period
        return ((now + period - 1) // period) * period
