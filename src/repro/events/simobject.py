"""SimObject: the base class for every simulated component.

Mirrors gem5's ``SimObject``: named, parented into a configuration tree,
attached to an event queue and clock domain, and owning a group of
statistics.  On top of the gem5 shape we add the *host instrumentation*
hook: every SimObject can report the simulator functions it "executes" to
an :class:`~repro.host.trace.ExecutionRecorder`, which is how a g5 run
turns into a host-level profile (see DESIGN.md §4).
"""

from __future__ import annotations

from typing import Iterator, Optional, TYPE_CHECKING

from .queue import EventQueue
from .ticks import ClockDomain

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..g5.stats import StatGroup
    from ..host.trace import ExecutionRecorder


class SimObject:
    """A named node in the simulated-system tree."""

    def __init__(self, name: str, parent: Optional["SimObject"] = None) -> None:
        if not name:
            raise ValueError("SimObject requires a non-empty name")
        self.name = name
        self.parent = parent
        self.children: list[SimObject] = []
        if parent is not None:
            parent.children.append(self)
            self.eventq: Optional[EventQueue] = parent.eventq
            self.clock: Optional[ClockDomain] = parent.clock
            self.recorder: Optional["ExecutionRecorder"] = parent.recorder
        else:
            self.eventq = None
            self.clock = None
            self.recorder = None
        # Cached "is anyone listening?" flag so host_record is a single
        # attribute test when no profiler is attached (see host_record).
        self._rec_live = (self.recorder is not None
                          and self.recorder.enabled)
        self._stats: Optional["StatGroup"] = None

    # ------------------------------------------------------------------
    # tree plumbing
    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        """Dotted path from the root, e.g. ``system.cpu.icache``."""
        if self.parent is None:
            return self.name
        return f"{self.parent.path}.{self.name}"

    def descendants(self) -> Iterator["SimObject"]:
        """Yield every SimObject below this one, depth-first."""
        for child in self.children:
            yield child
            yield from child.descendants()

    def find(self, path: str) -> "SimObject":
        """Look up a descendant by dotted relative path."""
        node: SimObject = self
        for part in path.split("."):
            for child in node.children:
                if child.name == part:
                    node = child
                    break
            else:
                raise KeyError(f"{self.path} has no descendant {path!r}")
        return node

    # ------------------------------------------------------------------
    # timing helpers
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated tick."""
        return self._eventq().now

    def cycles(self, n: int) -> int:
        """Ticks spanned by ``n`` cycles of this object's clock domain."""
        if self.clock is None:
            raise RuntimeError(f"{self.path} has no clock domain")
        return self.clock.cycles_to_ticks(n)

    def schedule(self, event, when: int):
        return self._eventq().schedule(event, when)

    def schedule_in(self, event, delay: int):
        return self._eventq().schedule_in(event, delay)

    def _eventq(self) -> EventQueue:
        if self.eventq is None:
            raise RuntimeError(f"{self.path} is not attached to an event queue")
        return self.eventq

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def stats(self) -> "StatGroup":
        if self._stats is None:
            from ..g5.stats import StatGroup

            self._stats = StatGroup(self.path)
        return self._stats

    def reg_stats(self) -> None:
        """Hook for subclasses to declare statistics; called by System."""

    # ------------------------------------------------------------------
    # host instrumentation
    # ------------------------------------------------------------------
    def host_fn(self, name: str) -> int:
        """Intern a simulator-function name for fast recording.

        Returns an integer id; components cache ids at construction time
        and call :meth:`host_record` on hot paths.
        """
        if self.recorder is None:
            return 0
        return self.recorder.intern(name)

    def host_record(self, fn_id: int, daddr: int = 0) -> None:
        """Report one invocation of simulator function ``fn_id``.

        ``daddr`` is the host address of the main data structure touched
        (0 for pure-control functions); the host model replays it against
        the data-side cache hierarchy.  When no profiler is attached
        (no recorder, or a disabled one) this is an O(1) flag test —
        hot loops may also read ``_rec_live`` directly and skip the
        call entirely.
        """
        if self._rec_live:
            self.recorder.record(fn_id, daddr)

    def host_alloc(self, nbytes: int, label: str = "") -> int:
        """Reserve ``nbytes`` of host heap for this object's state."""
        if self.recorder is None:
            return 0
        return self.recorder.alloc(nbytes, label or self.path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.path}>"


class Root(SimObject):
    """Root of a simulated system; owns the event queue and base clock."""

    def __init__(self, name: str = "root",
                 eventq: Optional[EventQueue] = None,
                 clock: Optional[ClockDomain] = None,
                 recorder: Optional["ExecutionRecorder"] = None) -> None:
        super().__init__(name, parent=None)
        self.eventq = eventq if eventq is not None else EventQueue()
        self.clock = clock if clock is not None else ClockDomain(1e9)
        self.recorder = recorder
        self._rec_live = recorder is not None and recorder.enabled

    def reg_all_stats(self) -> None:
        """Invoke ``reg_stats`` across the whole tree (gem5's regStats)."""
        self.reg_stats()
        for obj in self.descendants():
            obj.reg_stats()
