"""Events and event priorities for the discrete-event kernel.

The design intentionally mirrors gem5's ``Event`` class: an event has a
scheduled tick, a priority used to order same-tick events, and a
``process()`` method run when the event fires.  ``CallbackEvent`` adapts a
plain callable, which covers most model code.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

# Priority levels, copied from gem5's sim/eventq.hh so same-tick ordering
# matches the reference simulator's semantics.
MINIMUM_PRI = -100
DEBUG_ENABLE_PRI = -101
CPU_SWITCH_PRI = -31
DELAYED_WRITEBACK_PRI = -1
DEFAULT_PRI = 0
# Reserved for boundary-link delivery events in sharded (multi-queue)
# simulation.  Sorts after same-tick model events (DEFAULT_PRI) and
# before CPU ticks, and no model event may use it, so a delivery never
# ties with local work and cross-queue ordering stays total.
LINK_PRI = 40
CPU_TICK_PRI = 50
DVFS_UPDATE_PRI = 62
SERIALIZE_PRI = 64
CPU_EXIT_PRI = 64
STAT_EVENT_PRI = 90
SIM_EXIT_PRI = 100
MAXIMUM_PRI = 200

_sequence = itertools.count()


class Event:
    """A schedulable unit of work.

    Subclasses override :meth:`process`.  Events compare by
    ``(when, priority, insertion order)`` so the queue is a total order
    and simulation is deterministic.
    """

    __slots__ = ("when", "priority", "name", "_seq", "_scheduled", "_squashed")

    def __init__(self, name: str = "", priority: int = DEFAULT_PRI) -> None:
        self.name = name or type(self).__name__
        self.priority = priority
        self.when: int = -1
        self._seq = 0
        self._scheduled = False
        self._squashed = False

    # -- queue bookkeeping (used by EventQueue) -------------------------
    def _mark_scheduled(self, when: int) -> None:
        self.when = when
        self._seq = next(_sequence)
        self._scheduled = True
        self._squashed = False

    def _mark_done(self) -> None:
        self._scheduled = False

    @property
    def scheduled(self) -> bool:
        """True while the event sits in an event queue."""
        return self._scheduled

    @property
    def squashed(self) -> bool:
        """True if the event was descheduled and should be ignored."""
        return self._squashed

    def squash(self) -> None:
        """Cancel a scheduled event without removing it from the heap.

        Mirrors gem5: removal from the middle of the priority queue is
        expensive, so cancelled events are flagged and skipped when they
        reach the head.
        """
        self._squashed = True
        self._scheduled = False

    def sort_key(self) -> tuple[int, int, int]:
        return (self.when, self.priority, self._seq)

    def process(self) -> None:
        raise NotImplementedError(f"{type(self).__name__} must implement process()")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "scheduled" if self._scheduled else "idle"
        return f"<{type(self).__name__} {self.name!r} when={self.when} {state}>"


class CallbackEvent(Event):
    """Event that invokes an arbitrary callable when processed."""

    __slots__ = ("callback",)

    def __init__(
        self,
        callback: Callable[[], None],
        name: str = "",
        priority: int = DEFAULT_PRI,
    ) -> None:
        super().__init__(name=name or getattr(callback, "__name__", "callback"),
                         priority=priority)
        self.callback = callback

    def process(self) -> None:
        self.callback()


class ExitEvent(Event):
    """Raised to the simulation loop to request termination.

    The queue stores the most recent exit event; :class:`~repro.events.queue.
    EventQueue.run` returns it to the caller, mirroring gem5's
    ``simulate()`` returning a ``GlobalSimLoopExitEvent``.
    """

    __slots__ = ("cause", "code")

    def __init__(self, cause: str, code: int = 0,
                 priority: int = SIM_EXIT_PRI) -> None:
        super().__init__(name=f"exit:{cause}", priority=priority)
        self.cause = cause
        self.code = code

    def process(self) -> None:
        # Processing is handled specially by the event queue, which stops
        # the simulation loop; nothing to do here.
        pass


class PeriodicEvent(Event):
    """Event that reschedules itself every ``interval`` ticks.

    Used for stat dumps and host-counter sampling.  The callback may
    return ``False`` to stop the recurrence.
    """

    __slots__ = ("callback", "interval", "queue")

    def __init__(
        self,
        queue: "EventQueueProtocol",
        interval: int,
        callback: Callable[[], Optional[bool]],
        name: str = "periodic",
        priority: int = STAT_EVENT_PRI,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        super().__init__(name=name, priority=priority)
        self.queue = queue
        self.interval = interval
        self.callback = callback

    def process(self) -> None:
        keep_going = self.callback()
        if keep_going is not False:
            self.queue.schedule(self, self.queue.now + self.interval)


class EventQueueProtocol:
    """Minimal interface PeriodicEvent needs; satisfied by EventQueue."""

    now: int

    def schedule(self, event: Event, when: int) -> None:  # pragma: no cover
        raise NotImplementedError
