"""The discrete-event simulation kernel.

``EventQueue`` is the heart of the gem5-like simulator: a priority queue
of :class:`~repro.events.event.Event` ordered by ``(tick, priority,
insertion order)``, plus a run loop with exit-event and max-tick support.
This mirrors gem5's ``EventQueue`` + ``simulate()`` pair.

Fast path: the common simulation pattern is a single self-rescheduling
event (a CPU tick) with nothing else pending, which on a plain binary
heap still pays a ``heappush``/``heappop`` pair per instruction.  Two
mechanisms remove that cost while preserving the exact event ordering:

- a one-element *next-event slot* in front of the heap.  An event that
  sorts before everything in the heap is parked in the slot instead of
  being pushed; the run loop consumes it without touching the heap.  The
  invariant is that a live slot entry never sorts after the heap head, so
  ordering is identical to a pure heap.
- :meth:`advance_if_idle` lets a self-rescheduling component ask "if I
  rescheduled myself at tick T, would I be the next event anyway?" — and
  if so, simply advances ``now`` to T with no queue traffic at all.

Both are disabled when the queue is built with ``fast_path=False`` so the
differential test suite can run the two implementations against each
other.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from .event import CallbackEvent, Event, ExitEvent, _sequence


class EventQueueError(RuntimeError):
    """Raised on scheduling misuse (past-tick schedules, double schedule)."""


class EventQueue:
    """A deterministic discrete-event queue.

    The queue never moves time backwards; scheduling an event in the past
    raises :class:`EventQueueError`.  Squashed events stay in the heap and
    are discarded lazily when they reach the head, matching gem5's
    approach to descheduling.
    """

    def __init__(self, name: str = "MainEventQueue",
                 fast_path: bool = True) -> None:
        self.name = name
        self.now: int = 0
        self.fast_path = fast_path
        # Heap entries carry the event's schedule generation (its _seq)
        # so stale entries left by deschedule/reschedule are skipped.
        self._heap: list[tuple[tuple[int, int, int], int, Event]] = []
        # Next-event slot: holds the entry that sorts before the whole
        # heap, or None.  Entries have the same shape as heap entries.
        self._next: Optional[tuple[tuple[int, int, int], int, Event]] = None
        self._events_processed = 0
        self._exit_event: Optional[ExitEvent] = None
        # Limits of the currently-active run(), consulted by
        # advance_if_idle so the bypass never overruns them.
        self._run_max_tick: Optional[int] = None
        self._run_limited = False
        # Upper bound (exclusive, a (tick, priority, seq) key) of the
        # currently-active run_window(); None outside a window.  The
        # sharded engine clamps it mid-window when a cross-queue send
        # must interleave before this queue's remaining events.
        self._window_bound: Optional[tuple[int, int, int]] = None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, event: Event, when: int) -> Event:
        """Schedule ``event`` to fire at absolute tick ``when``."""
        if when < self.now:
            raise EventQueueError(
                f"cannot schedule {event.name!r} at tick {when}; "
                f"current tick is {self.now}")
        if event.scheduled:
            raise EventQueueError(
                f"event {event.name!r} is already scheduled for tick "
                f"{event.when}; deschedule or squash it first")
        event._mark_scheduled(when)
        entry = (event.sort_key(), event._seq, event)
        if self.fast_path:
            nxt = self._next
            if nxt is None:
                if not self._heap or entry < self._heap[0]:
                    self._next = entry
                    return event
            elif entry < nxt:
                # Demote the slot occupant (possibly stale) to the heap;
                # it still sorts at or before every heap entry, so the
                # slot invariant survives.
                heapq.heappush(self._heap, nxt)
                self._next = entry
                return event
        heapq.heappush(self._heap, entry)
        return event

    def schedule_in(self, event: Event, delay: int) -> Event:
        """Schedule ``event`` ``delay`` ticks from now."""
        if delay < 0:
            raise EventQueueError(f"delay cannot be negative, got {delay}")
        return self.schedule(event, self.now + delay)

    def schedule_fresh(self, event: Event, when: int) -> None:
        """Minimal-overhead schedule for a freshly built event.

        Boundary links fire one delivery event per cross-domain packet,
        so scheduling cost is on the sharded hot path.  The event is
        constructed at its send site and scheduled exactly once, and the
        sharded engine only ever runs the domain holding the globally
        smallest key, so the past-tick and double-schedule guards of
        :meth:`schedule` cannot trip; this skips them.
        """
        event.when = when
        event._seq = seq = next(_sequence)
        event._scheduled = True
        entry = ((when, event.priority, seq), seq, event)
        if self.fast_path:
            nxt = self._next
            if nxt is None:
                if not self._heap or entry < self._heap[0]:
                    self._next = entry
                    return
            elif entry < nxt:
                heapq.heappush(self._heap, nxt)
                self._next = entry
                return
        heapq.heappush(self._heap, entry)

    def call_at(self, when: int, callback: Callable[[], None],
                name: str = "", priority: int = 0) -> CallbackEvent:
        """Convenience: schedule ``callback`` at absolute tick ``when``."""
        event = CallbackEvent(callback, name=name, priority=priority)
        self.schedule(event, when)
        return event

    def call_in(self, delay: int, callback: Callable[[], None],
                name: str = "", priority: int = 0) -> CallbackEvent:
        """Convenience: schedule ``callback`` ``delay`` ticks from now."""
        event = CallbackEvent(callback, name=name, priority=priority)
        self.schedule_in(event, delay)
        return event

    def deschedule(self, event: Event) -> None:
        """Cancel a scheduled event (lazy removal)."""
        if not event.scheduled:
            raise EventQueueError(f"event {event.name!r} is not scheduled")
        event.squash()

    def reschedule(self, event: Event, when: int) -> Event:
        """Move a (possibly scheduled) event to a new tick."""
        if event.scheduled:
            event.squash()
        return self.schedule(event, when)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        count = sum(1 for key, seq, ev in self._heap
                    if not ev.squashed and ev._seq == seq)
        nxt = self._next
        if nxt is not None and not nxt[2].squashed and nxt[2]._seq == nxt[1]:
            count += 1
        return count

    def empty(self) -> bool:
        return len(self) == 0

    def next_tick(self) -> Optional[int]:
        """Tick of the next live event, or ``None`` if the queue is empty."""
        entry = self._peek_live()
        return None if entry is None else entry[2].when

    def peek_key(self) -> Optional[tuple[int, int, int]]:
        """Sort key ``(tick, priority, seq)`` of the next live event.

        ``None`` if the queue is empty.  Because every queue draws event
        sequence numbers from the same global counter, keys from
        different queues are directly comparable: the smaller key is the
        event that a single merged queue would fire first.
        """
        entry = self._peek_live()
        return None if entry is None else entry[0]

    @property
    def events_processed(self) -> int:
        return self._events_processed

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def exit_simulation(self, cause: str, code: int = 0,
                        when: Optional[int] = None) -> ExitEvent:
        """Schedule an exit event (defaults to the current tick)."""
        event = ExitEvent(cause, code)
        self.schedule(event, self.now if when is None else when)
        return event

    def advance_if_idle(self, when: int, priority: int) -> bool:
        """Fast-forward ``now`` to ``when`` if nothing would fire first.

        This is the zero-heap tick loop: a self-rescheduling component
        about to schedule its next firing at ``(when, priority)`` calls
        this instead; ``True`` means time has been advanced and the
        component should just keep running (no schedule/pop round-trip),
        ``False`` means another event (or a run() limit) intervenes and
        the caller must schedule normally.
        """
        if not self.fast_path:
            return False
        if self._run_limited:
            # A max_events-limited run counts real pops; never bypass.
            return False
        if self._run_max_tick is not None and when > self._run_max_tick:
            return False
        bound = self._window_bound
        if bound is not None and (when, priority) >= bound[:2]:
            # A fresh schedule would draw a newer (larger) sequence
            # number than the event at the bound, so a (when, priority)
            # tie also sorts at-or-after the bound: never bypass it.
            return False
        entry = self._peek_live()
        if entry is not None:
            ewhen, epri, _ = entry[0]
            if ewhen < when or (ewhen == when and epri <= priority):
                return False
        self.now = when
        return True

    def run(self, max_tick: Optional[int] = None,
            max_events: Optional[int] = None) -> ExitEvent:
        """Run until an exit event fires, the queue drains, or a limit hits.

        Returns the :class:`ExitEvent` describing why the loop stopped,
        synthesising one for drain/limit conditions the way gem5's
        ``simulate()`` reports "simulate() limit reached".
        """
        self._exit_event = None
        self._run_max_tick = max_tick
        self._run_limited = max_events is not None
        processed_this_run = 0
        try:
            while True:
                entry = self._peek_live()
                if entry is None:
                    return ExitEvent("event queue empty", code=0)
                key, seq, event = entry
                if max_tick is not None and event.when > max_tick:
                    self.now = max_tick
                    return ExitEvent("simulate() limit reached", code=0)
                if entry is self._next:
                    self._next = None
                else:
                    heapq.heappop(self._heap)
                self.now = event.when
                event._mark_done()
                self._events_processed += 1
                processed_this_run += 1
                if isinstance(event, ExitEvent):
                    self._exit_event = event
                    return event
                event.process()
                if max_events is not None and processed_this_run >= max_events:
                    return ExitEvent("event count limit reached", code=0)
        finally:
            self._run_max_tick = None
            self._run_limited = False

    # ------------------------------------------------------------------
    # windowed execution (sharded simulation)
    # ------------------------------------------------------------------
    @property
    def window_bound(self) -> Optional[tuple[int, int, int]]:
        """The active window's exclusive bound, or None outside one."""
        return self._window_bound

    def clamp_window(self, key: tuple[int, int, int]) -> None:
        """Shrink the active window so no event at/after ``key`` fires.

        Called by boundary links when a cross-queue delivery is
        scheduled mid-window: the sender must stop before the delivery's
        global position so the merged order stays exact.  A no-op
        outside a window (single-queue runs pop in global order anyway).
        """
        if self._window_bound is not None and key < self._window_bound:
            self._window_bound = key

    def run_window(self, bound: tuple[int, int, int]) -> Optional[ExitEvent]:
        """Run every live event whose sort key is below ``bound``.

        The sharded engine's inner loop: the engine picks the queue
        holding the globally-smallest head key and lets it run up to
        (exclusive) the smallest head key of any *other* queue, so only
        events that would fire next on a single merged queue execute.
        The bound may shrink mid-window via :meth:`clamp_window`.

        Returns the :class:`ExitEvent` if one fired inside the window,
        else ``None`` (bound reached or queue drained).
        """
        self._window_bound = bound
        heap = self._heap
        heappop = heapq.heappop
        try:
            # Inlined _peek_live/_mark_done: this loop runs once per
            # event of the whole sharded simulation, and the method-call
            # and property overhead is what the speedup gate measures.
            while True:
                entry = self._next
                if entry is not None and (entry[2]._squashed
                                          or entry[2]._seq != entry[1]):
                    self._next = entry = None
                if entry is None:
                    while heap and (heap[0][2]._squashed
                                    or heap[0][2]._seq != heap[0][1]):
                        heappop(heap)
                    if not heap:
                        return None
                    entry = heap[0]
                key, seq, event = entry
                if key >= self._window_bound:
                    return None
                if entry is self._next:
                    self._next = None
                else:
                    heappop(heap)
                self.now = event.when
                event._scheduled = False
                self._events_processed += 1
                if isinstance(event, ExitEvent):
                    self._exit_event = event
                    return event
                event.process()
        finally:
            self._window_bound = None

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _peek_live(self):
        """The entry that fires next (slot first, then heap), or None."""
        self._drop_squashed_head()
        if self._next is not None:
            return self._next
        if self._heap:
            return self._heap[0]
        return None

    def _drop_squashed_head(self) -> None:
        nxt = self._next
        if nxt is not None and (nxt[2].squashed or nxt[2]._seq != nxt[1]):
            self._next = None
        heap = self._heap
        while heap and (heap[0][2].squashed or heap[0][2]._seq != heap[0][1]):
            heapq.heappop(heap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<EventQueue {self.name!r} now={self.now} "
                f"pending={len(self)} processed={self._events_processed}>")
