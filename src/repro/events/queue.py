"""The discrete-event simulation kernel.

``EventQueue`` is the heart of the gem5-like simulator: a priority queue
of :class:`~repro.events.event.Event` ordered by ``(tick, priority,
insertion order)``, plus a run loop with exit-event and max-tick support.
This mirrors gem5's ``EventQueue`` + ``simulate()`` pair.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from .event import CallbackEvent, Event, ExitEvent


class EventQueueError(RuntimeError):
    """Raised on scheduling misuse (past-tick schedules, double schedule)."""


class EventQueue:
    """A deterministic discrete-event queue.

    The queue never moves time backwards; scheduling an event in the past
    raises :class:`EventQueueError`.  Squashed events stay in the heap and
    are discarded lazily when they reach the head, matching gem5's
    approach to descheduling.
    """

    def __init__(self, name: str = "MainEventQueue") -> None:
        self.name = name
        self.now: int = 0
        # Heap entries carry the event's schedule generation (its _seq)
        # so stale entries left by deschedule/reschedule are skipped.
        self._heap: list[tuple[tuple[int, int, int], int, Event]] = []
        self._events_processed = 0
        self._exit_event: Optional[ExitEvent] = None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, event: Event, when: int) -> Event:
        """Schedule ``event`` to fire at absolute tick ``when``."""
        if when < self.now:
            raise EventQueueError(
                f"cannot schedule {event.name!r} at tick {when}; "
                f"current tick is {self.now}")
        if event.scheduled:
            raise EventQueueError(
                f"event {event.name!r} is already scheduled for tick "
                f"{event.when}; deschedule or squash it first")
        event._mark_scheduled(when)
        heapq.heappush(self._heap, (event.sort_key(), event._seq, event))
        return event

    def schedule_in(self, event: Event, delay: int) -> Event:
        """Schedule ``event`` ``delay`` ticks from now."""
        if delay < 0:
            raise EventQueueError(f"delay cannot be negative, got {delay}")
        return self.schedule(event, self.now + delay)

    def call_at(self, when: int, callback: Callable[[], None],
                name: str = "", priority: int = 0) -> CallbackEvent:
        """Convenience: schedule ``callback`` at absolute tick ``when``."""
        event = CallbackEvent(callback, name=name, priority=priority)
        self.schedule(event, when)
        return event

    def call_in(self, delay: int, callback: Callable[[], None],
                name: str = "", priority: int = 0) -> CallbackEvent:
        """Convenience: schedule ``callback`` ``delay`` ticks from now."""
        event = CallbackEvent(callback, name=name, priority=priority)
        self.schedule_in(event, delay)
        return event

    def deschedule(self, event: Event) -> None:
        """Cancel a scheduled event (lazy removal)."""
        if not event.scheduled:
            raise EventQueueError(f"event {event.name!r} is not scheduled")
        event.squash()

    def reschedule(self, event: Event, when: int) -> Event:
        """Move a (possibly scheduled) event to a new tick."""
        if event.scheduled:
            event.squash()
        return self.schedule(event, when)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for key, seq, ev in self._heap
                   if not ev.squashed and ev._seq == seq)

    def empty(self) -> bool:
        return len(self) == 0

    def next_tick(self) -> Optional[int]:
        """Tick of the next live event, or ``None`` if the queue is empty."""
        self._drop_squashed_head()
        if not self._heap:
            return None
        return self._heap[0][2].when

    @property
    def events_processed(self) -> int:
        return self._events_processed

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def exit_simulation(self, cause: str, code: int = 0,
                        when: Optional[int] = None) -> ExitEvent:
        """Schedule an exit event (defaults to the current tick)."""
        event = ExitEvent(cause, code)
        self.schedule(event, self.now if when is None else when)
        return event

    def run(self, max_tick: Optional[int] = None,
            max_events: Optional[int] = None) -> ExitEvent:
        """Run until an exit event fires, the queue drains, or a limit hits.

        Returns the :class:`ExitEvent` describing why the loop stopped,
        synthesising one for drain/limit conditions the way gem5's
        ``simulate()`` reports "simulate() limit reached".
        """
        self._exit_event = None
        processed_this_run = 0
        while True:
            self._drop_squashed_head()
            if not self._heap:
                return ExitEvent("event queue empty", code=0)
            key, seq, event = self._heap[0]
            if max_tick is not None and event.when > max_tick:
                self.now = max_tick
                return ExitEvent("simulate() limit reached", code=0)
            heapq.heappop(self._heap)
            self.now = event.when
            event._mark_done()
            self._events_processed += 1
            processed_this_run += 1
            if isinstance(event, ExitEvent):
                self._exit_event = event
                return event
            event.process()
            if max_events is not None and processed_this_run >= max_events:
                return ExitEvent("event count limit reached", code=0)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _drop_squashed_head(self) -> None:
        heap = self._heap
        while heap and (heap[0][2].squashed or heap[0][2]._seq != heap[0][1]):
            heapq.heappop(heap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<EventQueue {self.name!r} now={self.now} "
                f"pending={len(self)} processed={self._events_processed}>")
