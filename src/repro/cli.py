"""Command-line interface: run simulations, profiles, and experiments.

Examples::

    repro-g5 simulate --workload water_nsquared --cpu o3 --scale simsmall
    repro-g5 profile --workload dedup --cpu timing --platform M1_Pro
    repro-g5 figure fig2 --scale simsmall
    repro-g5 tables
    repro-g5 list
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from .core.profiler import analyze_profile
from .experiments import FIGURES, ExperimentRunner, tables
from .g5.system import SimConfig, System, simulate
from .host.cpu import profile_g5_run
from .host.platform import get_platform
from .workloads.registry import SCALES, WORKLOADS, get_workload


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-g5",
        description="Reproduction of 'Profiling gem5 Simulator' "
                    "(ISPASS 2023)")
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one g5 simulation")
    sim.add_argument("--workload", required=True, choices=sorted(WORKLOADS))
    sim.add_argument("--cpu", default="atomic",
                     choices=["atomic", "timing", "minor", "o3"])
    sim.add_argument("--scale", default="simsmall", choices=SCALES)
    sim.add_argument("--stats-file", default=None,
                     help="write gem5-style stats.txt to this path")

    prof = sub.add_parser("profile", help="profile one g5 run on a host")
    prof.add_argument("--workload", required=True, choices=sorted(WORKLOADS))
    prof.add_argument("--cpu", default="atomic",
                      choices=["atomic", "timing", "minor", "o3"])
    prof.add_argument("--scale", default="simsmall", choices=SCALES)
    prof.add_argument("--platform", default="Intel_Xeon",
                      choices=["Intel_Xeon", "M1_Pro", "M1_Ultra"])
    prof.add_argument("--hotspots", type=int, default=10,
                      help="print the N hottest functions")

    fig = sub.add_parser("figure", help="regenerate one paper figure")
    fig.add_argument("figure_id", choices=sorted(FIGURES))
    fig.add_argument("--scale", default="simsmall", choices=SCALES)
    fig.add_argument("--max-records", type=int, default=None,
                     help="truncate traces before replay (sampling)")

    sub.add_parser("tables", help="print Tables I and II")
    sub.add_parser("list", help="list workloads, platforms, figures")

    report = sub.add_parser(
        "report", help="regenerate EXPERIMENTS.md (paper vs measured)")
    report.add_argument("--scale", default="simsmall", choices=SCALES)
    report.add_argument("--max-records", type=int, default=60000)
    report.add_argument("--output", default="EXPERIMENTS.md",
                        help="file to write (default: EXPERIMENTS.md)")
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    system = System(SimConfig(cpu_model=args.cpu, mode=workload.mode))
    program = workload.build(args.scale)
    if workload.mode == "se":
        system.set_se_workload(program, process_name=args.workload)
    else:
        system.set_fs_workload(program)
    result = simulate(system)
    print(f"workload       : {args.workload} ({workload.mode.upper()}, "
          f"{args.scale})")
    print(f"cpu model      : {args.cpu}")
    print(f"exit           : {result.exit_cause} (code {result.exit_code})")
    print(f"sim insts      : {result.sim_insts}")
    print(f"sim cycles     : {result.sim_cycles}")
    print(f"guest IPC      : {result.ipc:.3f}")
    print(f"sim seconds    : {result.sim_seconds:.6f}")
    print(f"trace records  : {len(result.recorder)}")
    if result.console:
        print(f"console        : {result.console!r}")
    if args.stats_file:
        from .g5.statsfile import save_stats

        save_stats(system, args.stats_file)
        print(f"stats          : wrote {args.stats_file}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    system = System(SimConfig(cpu_model=args.cpu, mode=workload.mode))
    program = workload.build(args.scale)
    if workload.mode == "se":
        system.set_se_workload(program, process_name=args.workload)
    else:
        system.set_fs_workload(program)
    g5_result = simulate(system)
    platform = get_platform(args.platform)
    host = profile_g5_run(g5_result.recorder, platform)
    td = host.topdown
    print(f"gem5 ({args.cpu}, {args.workload}) on {platform.name}")
    print(f"host time      : {host.time_seconds * 1000:.2f} ms")
    print(f"host IPC       : {host.ipc:.2f}")
    print("top-down       : "
          f"retiring {td.retiring:.1%} | FE {td.frontend_bound:.1%} "
          f"(lat {td.fe_latency:.1%}, bw {td.fe_bandwidth:.1%}) | "
          f"bad-spec {td.bad_speculation:.1%} | BE {td.backend_bound:.1%}")
    print(f"L1I/L1D miss   : {host.l1i_miss_rate:.1%} / "
          f"{host.l1d_miss_rate:.1%}")
    print(f"iTLB/dTLB miss : {host.itlb_miss_rate:.2%} / "
          f"{host.dtlb_miss_rate:.2%}")
    print(f"DSB coverage   : {host.dsb_coverage:.1%}")
    print(f"branch mispred : {host.branch_mispredict_rate:.2%}")
    print(f"LLC occupancy  : {host.llc_occupancy_bytes / 1024:.0f} KB")
    print(f"DRAM bandwidth : {host.dram_bandwidth_gbps:.3f} GB/s")
    print(f"functions run  : {host.functions_executed}")
    report = analyze_profile(host.profile, top_n=args.hotspots)
    print(f"hottest {args.hotspots} functions:")
    for name, share in report.hottest:
        print(f"  {share:6.2%}  {name}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    runner = ExperimentRunner(scale=args.scale,
                              max_records=args.max_records)
    module = FIGURES[args.figure_id]
    figure = module.run(runner)
    print(figure.render())
    return 0


def _cmd_tables() -> int:
    print(tables.table1().render())
    print()
    print(tables.table2().render())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.summary import generate_report

    markdown = generate_report(scale=args.scale,
                               max_records=args.max_records)
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(markdown)
    print(f"wrote {args.output}")
    return 0


def _cmd_list() -> int:
    print("workloads:")
    for name, workload in sorted(WORKLOADS.items()):
        print(f"  {name:16s} suite={workload.suite:9s} mode={workload.mode}")
    print("platforms: Intel_Xeon, M1_Pro, M1_Ultra (+ FireSim sweeps)")
    print("figures  :", ", ".join(sorted(FIGURES)))
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "tables":
        return _cmd_tables()
    if args.command == "report":
        return _cmd_report(args)
    return _cmd_list()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
