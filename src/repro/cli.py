"""Command-line interface: run simulations, profiles, and experiments.

Examples::

    repro-g5 simulate --workload water_nsquared --cpu o3 --scale simsmall
    repro-g5 profile --workload dedup --cpu timing --platform M1_Pro
    repro-g5 figure fig2 --scale simsmall
    repro-g5 figs --jobs 4                 # all figures, parallel executor
    repro-g5 figs fig2 fig3 --no-cache     # a subset, cold
    repro-g5 cache info                    # inspect the on-disk cache
    repro-g5 tables
    repro-g5 list
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional

from .core.profiler import analyze_profile
from .exec import ProgressReporter, ResultCache, default_cache_dir
from .experiments import FIGURES, ExperimentRunner, tables
from .g5.system import SimConfig, System, simulate
from .host.cpu import profile_g5_run
from .host.platform import get_platform
from .workloads.registry import SCALES, WORKLOADS, get_workload


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}")
    return value


_SIZE_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def _byte_size(text: str) -> int:
    """Parse ``512``, ``64K``, ``100M``, ``2G`` into bytes."""
    raw = text.strip().lower().removesuffix("b")
    factor = 1
    if raw and raw[-1] in _SIZE_SUFFIXES:
        factor = _SIZE_SUFFIXES[raw[-1]]
        raw = raw[:-1]
    try:
        value = int(float(raw) * factor)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be a size like 512, 64K, 100M or 2G, "
            f"got {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"size must be >= 0, got {text!r}")
    return value


def _add_executor_args(parser: argparse.ArgumentParser) -> None:
    """Flags shared by every command that goes through the executor."""
    parser.add_argument("--jobs", type=_positive_int, default=1,
                        help="worker processes for g5 cache misses "
                             "(default: 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the on-disk result cache entirely")
    parser.add_argument("--cache-dir", default=None,
                        help="cache location (default: $REPRO_CACHE_DIR "
                             "or ~/.cache/repro-g5)")


def _cache_from_args(args: argparse.Namespace) -> Optional[ResultCache]:
    if getattr(args, "no_cache", False):
        return None
    return ResultCache(args.cache_dir)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-g5",
        description="Reproduction of 'Profiling gem5 Simulator' "
                    "(ISPASS 2023)")
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one g5 simulation")
    sim.add_argument("--workload", required=True, choices=sorted(WORKLOADS))
    sim.add_argument("--cpu", default="atomic",
                     choices=["atomic", "timing", "minor", "o3"])
    sim.add_argument("--scale", default="simsmall", choices=SCALES)
    sim.add_argument("--stats-file", default=None,
                     help="write gem5-style stats.txt to this path")
    sim.add_argument("--domains", type=_positive_int, default=1,
                     help="event-queue domains (2 = CPU + memory shard; "
                          "default: 1, single queue)")
    sim.add_argument("--link-latency", type=int, default=0,
                     help="cross-domain boundary-link latency in cycles "
                          "(default: 0; >0 changes guest timing)")
    sim.add_argument("--sanitize", action="store_true",
                     help="arm the runtime ownership sanitizer (requires "
                          "--domains >= 2); exits nonzero on any "
                          "cross-domain write outside the boundary "
                          "channels")
    sim.add_argument("--threads", "-n", type=_positive_int, default=1,
                     help="guest threads for workloads with a threaded "
                          "variant (default: 1, the legacy kernel)")
    sim.add_argument("--cores", type=_positive_int, default=None,
                     help="simulated cores (default: one per guest "
                          "thread; SE mode, atomic/timing models only)")

    prof = sub.add_parser("profile", help="profile one g5 run on a host")
    prof.add_argument("--workload", required=True, choices=sorted(WORKLOADS))
    prof.add_argument("--cpu", default="atomic",
                      choices=["atomic", "timing", "minor", "o3"])
    prof.add_argument("--scale", default="simsmall", choices=SCALES)
    prof.add_argument("--platform", default="Intel_Xeon",
                      choices=["Intel_Xeon", "M1_Pro", "M1_Ultra"])
    prof.add_argument("--hotspots", type=int, default=10,
                      help="print the N hottest functions")

    fig = sub.add_parser("figure", help="regenerate one paper figure")
    fig.add_argument("figure_id", choices=sorted(FIGURES))
    fig.add_argument("--scale", default="simsmall", choices=SCALES)
    fig.add_argument("--max-records", type=int, default=None,
                     help="truncate traces before replay (sampling)")
    _add_executor_args(fig)

    figs = sub.add_parser(
        "figs", help="regenerate many figures via the parallel executor")
    figs.add_argument("figures", nargs="*", metavar="FIG",
                      help="figure ids (default: all fifteen)")
    figs.add_argument("--scale", default="simsmall", choices=SCALES)
    figs.add_argument("--max-records", type=int, default=None,
                      help="truncate traces before replay (sampling)")
    figs.add_argument("--quiet", action="store_true",
                      help="suppress per-run progress lines")
    _add_executor_args(figs)

    cache = sub.add_parser(
        "cache", help="inspect, clear, or prune the on-disk result cache")
    cache.add_argument("action", choices=["info", "list", "clear",
                                          "prune"])
    cache.add_argument("--kind", default=None,
                       choices=["g5", "host", "spec", "lint"],
                       help="restrict clear to one entry kind")
    cache.add_argument("--max-bytes", type=_byte_size, default=None,
                       help="prune: evict oldest entries until the "
                            "store fits in this many bytes "
                            "(accepts K/M/G suffixes)")
    cache.add_argument("--cache-dir", default=None,
                       help="cache location (default: $REPRO_CACHE_DIR "
                            "or ~/.cache/repro-g5)")

    sub.add_parser("tables", help="print Tables I and II")
    sub.add_parser("list", help="list workloads, platforms, figures")

    report = sub.add_parser(
        "report", help="regenerate EXPERIMENTS.md (paper vs measured)")
    report.add_argument("--scale", default="simsmall", choices=SCALES)
    report.add_argument("--max-records", type=int, default=60000)
    report.add_argument("--output", default="EXPERIMENTS.md",
                        help="file to write (default: EXPERIMENTS.md)")
    _add_executor_args(report)

    bench = sub.add_parser(
        "bench", help="benchmark the simulation kernel fast path")
    bench.add_argument("--models", nargs="*", metavar="MODEL",
                       default=["atomic", "timing", "minor", "o3"],
                       choices=["atomic", "timing", "minor", "o3"],
                       help="CPU models to benchmark (default: all four)")
    bench.add_argument("--workload", default="sieve",
                       choices=sorted(WORKLOADS))
    bench.add_argument("--scale", default="simsmall", choices=SCALES)
    bench.add_argument("--repeats", type=_positive_int, default=3,
                       help="timed runs per variant; best is kept")
    bench.add_argument("--quick", action="store_true",
                       help="atomic model only, single repeat (for CI)")
    bench.add_argument("--output", default="BENCH_kernel.json",
                       help="JSON results file (default: BENCH_kernel.json)")
    bench.add_argument("--min-speedup", type=float, default=None,
                       help="fail unless the atomic fast-path speedup "
                            "reaches this factor")
    bench.add_argument("--sharded", action="store_true",
                       help="benchmark sharded (multi-queue) Timing "
                            "simulation instead of the fast path")
    bench.add_argument("--domains", type=_positive_int, default=2,
                       help="with --sharded: event-queue domains "
                            "(default: 2)")

    srv = sub.add_parser(
        "serve", help="run the simulation-as-a-service daemon")
    srv.add_argument("--host", default="127.0.0.1",
                     help="bind address (default: 127.0.0.1)")
    srv.add_argument("--port", type=int, default=8091,
                     help="listen port (default: 8091; 0 = ephemeral)")
    srv.add_argument("--jobs", type=_positive_int, default=2,
                     help="concurrent simulation workers (default: 2)")
    srv.add_argument("--max-queue", type=_positive_int, default=64,
                     help="admission-control queue depth; beyond this "
                          "submissions get 429 (default: 64)")
    srv.add_argument("--timeout", type=float, default=None,
                     help="per-job wall-clock budget in seconds "
                          "(default: unlimited)")
    srv.add_argument("--retries", type=int, default=2,
                     help="retries after worker crashes (default: 2)")
    srv.add_argument("--cache-max-bytes", type=_byte_size, default=None,
                     help="prune the disk cache back under this size "
                          "as the daemon runs (accepts K/M/G suffixes)")
    srv.add_argument("--no-cache", action="store_true",
                     help="skip the on-disk result cache entirely")
    srv.add_argument("--cache-dir", default=None,
                     help="cache location (default: $REPRO_CACHE_DIR "
                          "or ~/.cache/repro-g5)")
    srv.add_argument("--verbose", action="store_true",
                     help="log every HTTP request to stderr")

    fleet = sub.add_parser(
        "fleet", help="multi-node serving: coordinator, workers, "
                      "capacity report")
    fleet.add_argument("action",
                       choices=["coordinator", "worker", "report"])
    fleet.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    fleet.add_argument("--port", type=int, default=None,
                       help="listen port (default: 8090 coordinator, "
                            "ephemeral worker)")
    fleet.add_argument("--coordinator", default="http://127.0.0.1:8090",
                       help="worker: coordinator base URL "
                            "(default: http://127.0.0.1:8090)")
    fleet.add_argument("--jobs", type=_positive_int, default=2,
                       help="worker: concurrent simulation executors "
                            "(default: 2)")
    fleet.add_argument("--max-queue", type=_positive_int, default=64,
                       help="worker: admission-control queue depth "
                            "(default: 64)")
    fleet.add_argument("--advertise-url", default=None,
                       help="worker: URL peers should reach us at "
                            "(default: the bound address)")
    fleet.add_argument("--heartbeat-timeout", type=float, default=3.0,
                       help="coordinator: seconds without a heartbeat "
                            "before a worker is declared dead "
                            "(default: 3.0)")
    fleet.add_argument("--max-pending", type=_positive_int, default=256,
                       help="coordinator: queued jobs before 429s "
                            "(default: 256)")
    fleet.add_argument("--dispatchers", type=_positive_int, default=8,
                       help="coordinator: concurrent dispatch threads "
                            "(default: 8)")
    fleet.add_argument("--timeout", type=float, default=None,
                       help="per-job wall-clock budget in seconds")
    fleet.add_argument("--workers", type=_positive_int, default=2,
                       help="report: worker nodes to plan for "
                            "(default: 2)")
    fleet.add_argument("--jobs-per-worker", type=_positive_int,
                       default=2,
                       help="report: executors per worker node "
                            "(default: 2)")
    fleet.add_argument("--target-p99", type=float, default=5.0,
                       help="report: p99 latency target in seconds "
                            "(default: 5.0)")
    fleet.add_argument("--cache-dir", default=None,
                       help="cache location (default: $REPRO_CACHE_DIR "
                            "or ~/.cache/repro-g5)")
    fleet.add_argument("--json", action="store_true", dest="as_json",
                       help="report: emit machine-readable JSON")
    fleet.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")

    sample = sub.add_parser(
        "sample", help="SimPoint-style sampled simulation")
    sample.add_argument("action",
                        choices=["profile", "pick", "run", "report"])
    sample.add_argument("--workload", required=True,
                        choices=sorted(WORKLOADS))
    sample.add_argument("--cpu", default="o3",
                        choices=["atomic", "timing", "minor", "o3"])
    sample.add_argument("--scale", default="simsmall", choices=SCALES)
    sample.add_argument("--interval", type=_positive_int, default=None,
                        help="instructions per interval (default: 250)")
    sample.add_argument("--warmup", type=int, default=None,
                        help="warmup instructions before each measured "
                             "window (default: 1000)")
    sample.add_argument("--k", type=int, default=0,
                        help="cluster count (0 = BIC-select, default)")
    sample.add_argument("--max-k", type=_positive_int, default=None,
                        help="largest k the BIC selection may pick "
                             "(default: 8)")
    sample.add_argument("--seed", type=int, default=None,
                        help="clustering/projection seed (default: 1234)")
    sample.add_argument("--domains", type=_positive_int, default=None,
                        help="event-queue domains for the detailed "
                             "measurement systems (default: 1)")
    sample.add_argument("--json", action="store_true", dest="as_json",
                        help="emit machine-readable JSON")
    _add_executor_args(sample)

    ckpt = sub.add_parser(
        "ckpt", help="take, inspect, or restore SE-mode checkpoints")
    ckpt.add_argument("action", choices=["take", "info", "restore"])
    ckpt.add_argument("file", help="checkpoint file path")
    ckpt.add_argument("--workload", default=None,
                      choices=sorted(WORKLOADS),
                      help="guest workload (take/restore)")
    ckpt.add_argument("--scale", default="simsmall", choices=SCALES)
    ckpt.add_argument("--at", type=_positive_int, default=None,
                      help="take: checkpoint after this many committed "
                           "instructions")
    ckpt.add_argument("--cpu", default="o3",
                      choices=["atomic", "timing", "minor", "o3"],
                      help="restore: CPU model to continue with")
    ckpt.add_argument("--json", action="store_true", dest="as_json",
                      help="emit machine-readable JSON")

    lint = sub.add_parser(
        "lint", help="simulator-invariant linter / guest-binary analyzer")
    lint.add_argument("--path", default=None,
                      help="directory to lint (default: the repro package)")
    lint.add_argument("--format", default="text", dest="fmt",
                      choices=["text", "json", "sarif"],
                      help="report format (default: text)")
    lint.add_argument("--output", default=None,
                      help="write the report to this file instead of stdout")
    lint.add_argument("--baseline", default=None,
                      help="baseline file (default: lint-baseline.json "
                           "found from the working directory upward)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="ignore any baseline file (report everything)")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite the baseline to the current findings "
                           "and exit 0")
    lint.add_argument("--list-passes", action="store_true",
                      help="list the registered lint passes and exit")
    lint.add_argument("--no-cache", action="store_true",
                      help="disable the content-addressed lint result "
                           "cache for this run")
    lint.add_argument("--cache-dir", default=None,
                      help="lint cache location (default: $REPRO_CACHE_DIR "
                           "or ~/.cache/repro-g5)")
    lint.add_argument("--ownership-map", default=None, metavar="FILE",
                      dest="ownership_map",
                      help="export the runtime domain-ownership map (plus "
                           "the race pass's access inventory) as JSON and "
                           "exit")
    lint.add_argument("--guest", default=None, metavar="WORKLOAD",
                      choices=sorted(WORKLOADS),
                      help="analyze this guest workload's binary instead "
                           "of linting host sources")
    lint.add_argument("--scale", default="test", choices=SCALES,
                      help="guest build scale for --guest (default: test)")
    lint.add_argument("--dynamic", action="store_true",
                      help="with --guest: also execute the workload and "
                           "cross-check the static CFG against the trace")
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    if args.sanitize and args.domains < 2:
        print("error: --sanitize requires --domains >= 2 (it validates "
              "the sharded domain partition)", file=sys.stderr)
        return 2
    cores = args.cores if args.cores is not None else max(1, args.threads)
    if args.threads > 1 and not workload.threaded:
        print(f"error: workload {args.workload!r} has no threaded "
              f"variant", file=sys.stderr)
        return 2
    try:
        config = SimConfig(cpu_model=args.cpu, mode=workload.mode,
                           domains=args.domains, cores=cores,
                           link_latency_cycles=args.link_latency,
                           sanitize=args.sanitize)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    system = System(config)
    program = workload.build(args.scale, threads=args.threads)
    if workload.mode == "se":
        system.set_se_workload(program, process_name=args.workload)
    else:
        system.set_fs_workload(program)
    result = simulate(system)
    print(f"workload       : {args.workload} ({workload.mode.upper()}, "
          f"{args.scale})")
    print(f"cpu model      : {args.cpu}")
    if cores > 1 or args.threads > 1:
        print(f"cores          : {cores} ({args.threads} guest "
              f"thread{'s' if args.threads != 1 else ''})")
        snoops = sum(int(d.stat_snoops.value()) for d in system.dcaches)
        invals = sum(int(d.stat_snoop_invalidates.value())
                     for d in system.dcaches)
        print(f"coherence      : {snoops} snoops, {invals} invalidations")
    print(f"exit           : {result.exit_cause} (code {result.exit_code})")
    print(f"sim insts      : {result.sim_insts}")
    print(f"sim cycles     : {result.sim_cycles}")
    print(f"guest IPC      : {result.ipc:.3f}")
    print(f"sim seconds    : {result.sim_seconds:.6f}")
    print(f"trace records  : {len(result.recorder)}")
    if result.sharding is not None:
        shard = result.sharding
        per_domain = ", ".join(
            f"{name} {count}" for name, count in zip(
                shard["domain_names"], shard["events_per_domain"]))
        print(f"domains        : {shard['domains']} ({per_domain})")
        print(f"sync windows   : {shard['windows']} "
              f"({shard['deliveries']} boundary deliveries, "
              f"quantum {shard['quantum_ticks']} ticks)")
    if result.sanitize is not None:
        san = result.sanitize
        print(f"sanitizer      : {san['checked_writes']} writes checked, "
              f"{san['boundary_crossings']} boundary crossings, "
              f"{len(san['violations'])} violation"
              f"{'s' if len(san['violations']) != 1 else ''}")
        for violation in san["violations"][:10]:
            print(f"  VIOLATION    : {violation['path']}.{violation['attr']} "
                  f"(owner {violation['owner_domain']}) written from "
                  f"{violation['active_domain']} at tick "
                  f"{violation['tick']}")
    if result.console:
        print(f"console        : {result.console!r}")
    if args.stats_file:
        from .g5.statsfile import save_stats

        save_stats(system, args.stats_file)
        print(f"stats          : wrote {args.stats_file}")
    if result.sanitize is not None and result.sanitize["violations"]:
        return 1
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    system = System(SimConfig(cpu_model=args.cpu, mode=workload.mode))
    program = workload.build(args.scale)
    if workload.mode == "se":
        system.set_se_workload(program, process_name=args.workload)
    else:
        system.set_fs_workload(program)
    g5_result = simulate(system)
    platform = get_platform(args.platform)
    host = profile_g5_run(g5_result.recorder, platform)
    td = host.topdown
    print(f"gem5 ({args.cpu}, {args.workload}) on {platform.name}")
    print(f"host time      : {host.time_seconds * 1000:.2f} ms")
    print(f"host IPC       : {host.ipc:.2f}")
    print("top-down       : "
          f"retiring {td.retiring:.1%} | FE {td.frontend_bound:.1%} "
          f"(lat {td.fe_latency:.1%}, bw {td.fe_bandwidth:.1%}) | "
          f"bad-spec {td.bad_speculation:.1%} | BE {td.backend_bound:.1%}")
    print(f"L1I/L1D miss   : {host.l1i_miss_rate:.1%} / "
          f"{host.l1d_miss_rate:.1%}")
    print(f"iTLB/dTLB miss : {host.itlb_miss_rate:.2%} / "
          f"{host.dtlb_miss_rate:.2%}")
    print(f"DSB coverage   : {host.dsb_coverage:.1%}")
    print(f"branch mispred : {host.branch_mispredict_rate:.2%}")
    print(f"LLC occupancy  : {host.llc_occupancy_bytes / 1024:.0f} KB")
    print(f"DRAM bandwidth : {host.dram_bandwidth_gbps:.3f} GB/s")
    print(f"functions run  : {host.functions_executed}")
    report = analyze_profile(host.profile, top_n=args.hotspots)
    print(f"hottest {args.hotspots} functions:")
    for name, share in report.hottest:
        print(f"  {share:6.2%}  {name}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    runner = ExperimentRunner(scale=args.scale,
                              max_records=args.max_records,
                              jobs=args.jobs,
                              cache=_cache_from_args(args))
    module = FIGURES[args.figure_id]
    runner.prefetch(module.required_g5())
    figure = module.run(runner)
    print(figure.render())
    return 0


def _print_executor_summary(runner: ExperimentRunner) -> None:
    stats = runner.cache_stats()
    print("== executor summary ==")
    print(f"g5 simulations executed : {stats['g5_executed']}")
    print(f"g5 disk-cache hits      : {stats['g5_disk_hits']}")
    print(f"host replays computed   : {stats['host_replays']} "
          f"(disk hits {stats['host_disk_hits']})")
    print(f"spec replays computed   : {stats['spec_replays']} "
          f"(disk hits {stats['spec_disk_hits']})")


def _cmd_figs(args: argparse.Namespace) -> int:
    figure_ids = args.figures or sorted(FIGURES)
    unknown = [fid for fid in figure_ids if fid not in FIGURES]
    if unknown:
        print(f"unknown figure id(s): {', '.join(unknown)}; choose from "
              f"{', '.join(sorted(FIGURES))}", file=sys.stderr)
        return 2
    progress = None if args.quiet else ProgressReporter()
    runner = ExperimentRunner(scale=args.scale,
                              max_records=args.max_records,
                              jobs=args.jobs,
                              cache=_cache_from_args(args),
                              progress=progress)
    requirements: list[tuple] = []
    for fid in figure_ids:
        requirements.extend(FIGURES[fid].required_g5())
    runner.prefetch(requirements)
    for fid in figure_ids:
        print(FIGURES[fid].run(runner).render())
        print()
    _print_executor_summary(runner)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.action == "prune":
        if args.max_bytes is None:
            print("cache prune requires --max-bytes", file=sys.stderr)
            return 2
        removed, freed = cache.prune(args.max_bytes)
        remaining = cache.stats()["total_bytes"]
        print(f"pruned {removed} entr{'y' if removed == 1 else 'ies'} "
              f"({freed / 1024:.1f} KB) from {cache.root}; "
              f"{remaining / 1024:.1f} KB remain")
        return 0
    if args.action == "clear":
        removed = cache.clear(kind=args.kind)
        what = f"{args.kind} " if args.kind else ""
        print(f"removed {removed} {what}cache entr"
              f"{'y' if removed == 1 else 'ies'} from {cache.root}")
        return 0
    if args.action == "list":
        count = 0
        for entry in cache.entries():
            print(f"{entry.digest[:12]}  {entry.size_bytes:>9d}B  "
                  f"{entry.label}")
            count += 1
        if not count:
            print(f"cache at {cache.root} is empty")
        return 0
    stats = cache.stats()
    print(f"cache root   : {cache.root}")
    print(f"entries      : {stats['entries']} "
          f"(g5 {stats.get('g5', 0)}, host {stats.get('host', 0)}, "
          f"spec {stats.get('spec', 0)})")
    print(f"total size   : {stats['total_bytes'] / 1024:.1f} KB")
    from .exec.costmodel import CostModel

    learned = CostModel(cache.costs_path).known_classes()
    print(f"cost history : {len(learned)} learned job class(es)")
    return 0


def _cmd_tables() -> int:
    print(tables.table1().render())
    print()
    print(tables.table2().render())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.summary import generate_report

    markdown = generate_report(scale=args.scale,
                               max_records=args.max_records,
                               jobs=args.jobs,
                               cache=_cache_from_args(args))
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(markdown)
    print(f"wrote {args.output}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import bench_kernel, check_min_speedup, write_results

    if args.sharded:
        return _cmd_bench_sharded(args)
    models = ["atomic"] if args.quick else args.models
    repeats = 1 if args.quick else args.repeats
    results = bench_kernel(models=models, workload=args.workload,
                           scale=args.scale, repeats=repeats)
    write_results(results, args.output)
    print(f"wrote {args.output}")
    if args.min_speedup is not None:
        error = check_min_speedup(results, args.min_speedup)
        if error is not None:
            print(f"FAIL: {error}", file=sys.stderr)
            return 1
        print(f"OK: atomic fast-path speedup "
              f"{results['models']['atomic']['speedup']:.2f}x >= "
              f"{args.min_speedup:.2f}x")
    return 0


def _cmd_bench_sharded(args: argparse.Namespace) -> int:
    from .bench import bench_sharded, check_sharded_gate, write_results

    # Unlike the kernel bench (4 models x 2 variants), the sharded bench
    # is one Timing workload; best-of-repeats stays cheap enough for CI,
    # and a single noisy run must not flip the gate.
    repeats = args.repeats
    output = args.output
    if output == "BENCH_kernel.json":       # the non-sharded default
        output = "BENCH_sharded.json"
    results = bench_sharded(domains=args.domains, workload=args.workload,
                            scale=args.scale, repeats=repeats)
    min_speedup = args.min_speedup if args.min_speedup is not None else 1.2
    error = check_sharded_gate(results, min_speedup)
    write_results(results, output)
    print(f"wrote {output}")
    if error is not None:
        print(f"FAIL: {error}", file=sys.stderr)
        return 1
    print(f"OK: sharded {results['gate_basis']} speedup "
          f"{results['speedup']:.2f}x >= {min_speedup:.2f}x, "
          f"byte-identical to single queue")
    return 0


def _lint_guest(args: argparse.Namespace) -> int:
    from .analysis import analyze_workload, render_guest_report

    report = analyze_workload(args.guest, scale=args.scale,
                              dynamic=args.dynamic)
    if args.fmt == "text":
        text = render_guest_report(report)
    else:
        import json

        text = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    if report["totality_failures"]:
        print(f"FAIL: decoder totality: "
              f"{len(report['totality_failures'])} opcode(s) unhandled",
              file=sys.stderr)
        return 1
    dynamic = report.get("dynamic")
    if dynamic is not None and not dynamic["agrees"]:
        print("FAIL: static CFG disagrees with the dynamic trace",
              file=sys.stderr)
        return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .analysis import (Baseline, all_passes, default_lint_cache,
                           default_lint_root, export_ownership_map,
                           find_default_baseline, render_json, render_sarif,
                           render_text, run_lint)
    from .analysis.baseline import DEFAULT_BASELINE_NAME, BaselineError

    if args.list_passes:
        for pass_cls in sorted(all_passes(), key=lambda cls: cls.rule):
            print(f"{pass_cls.rule:24s} {pass_cls.title}")
        return 0
    if args.guest is not None:
        return _lint_guest(args)

    root = Path(args.path) if args.path else default_lint_root()
    if args.ownership_map:
        from .analysis.passes.race import RacePass

        # Run the race pass alone, uncached, to populate its access
        # inventory for the export (cached runs skip the visitor).
        RacePass.reset_inventory()
        run_lint(root, passes=[RacePass])
        export_ownership_map(args.ownership_map,
                             inventory=RacePass.snapshot_inventory())
        print(f"wrote {args.ownership_map}")
        return 0
    cache = None if args.no_cache else default_lint_cache(args.cache_dir)
    findings = run_lint(root, cache=cache)

    baseline_path = (Path(args.baseline) if args.baseline
                     else find_default_baseline(Path.cwd()))
    if args.update_baseline:
        target = baseline_path or Path.cwd() / DEFAULT_BASELINE_NAME
        Baseline.from_findings(findings).save(target)
        print(f"wrote {target} ({len(findings)} finding"
              f"{'s' if len(findings) != 1 else ''})")
        return 0

    baseline = Baseline()
    if baseline_path is not None and not args.no_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    new, baselined = baseline.split(findings)

    if args.fmt == "json":
        text = render_json(new, baselined=len(baselined))
    elif args.fmt == "sarif":
        text = render_sarif(new, passes=all_passes())
    else:
        text = render_text(new, baselined=len(baselined))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)

    stale = baseline.stale_fingerprints(findings)
    if stale:
        print(f"note: {len(stale)} stale baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'} (fixed debt); run "
              "--update-baseline to drop them", file=sys.stderr)
    return 1 if new else 0


def _sample_job_from_args(args: argparse.Namespace):
    from .sample import SampledJob

    kwargs = {"workload": args.workload, "cpu_model": args.cpu,
              "scale": args.scale, "k": args.k}
    if args.interval is not None:
        kwargs["interval_insts"] = args.interval
    if args.warmup is not None:
        kwargs["warmup_insts"] = args.warmup
    if args.max_k is not None:
        kwargs["max_k"] = args.max_k
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.domains is not None:
        kwargs["domains"] = args.domains
    return SampledJob(**kwargs)


def _cmd_sample(args: argparse.Namespace) -> int:
    import json as json_mod

    from .exec.pool import ExecutionEngine
    from .sample import (SampleError, choose_k, kmeans, profile_intervals,
                         project_bbvs, render_sample_report,
                         select_representatives)

    job = _sample_job_from_args(args)
    try:
        if args.action in ("profile", "pick"):
            program = get_workload(job.workload).build(job.scale)
            profile = profile_intervals(program, job.workload, job.scale,
                                        job.interval_insts)
            if args.action == "profile":
                doc = {"workload": job.workload, "scale": job.scale,
                       "interval_insts": profile.interval_insts,
                       "total_insts": profile.total_insts,
                       "roi_anchor": profile.roi_anchor,
                       "roi_insts": profile.roi_insts,
                       "n_intervals": profile.n_intervals,
                       "block_universe": len(profile.block_universe()),
                       "exit_cause": profile.exit_cause}
                if args.as_json:
                    print(json_mod.dumps(doc, indent=2, sort_keys=True))
                    return 0
                for name, value in doc.items():
                    print(f"{name:<16}: {value}")
                return 0
            points = project_bbvs(profile.intervals, seed=job.seed)
            if job.k:
                clustering = kmeans(points, min(job.k, len(points)),
                                    seed=job.seed + job.k)
            else:
                clustering = choose_k(points, max_k=job.max_k,
                                      seed=job.seed)
            reps = select_representatives(points, clustering)
            doc = {"workload": job.workload, "scale": job.scale,
                   "n_intervals": profile.n_intervals,
                   "k": clustering.k, "bic": clustering.bic,
                   "sse": clustering.sse,
                   "representatives": [
                       {"interval": i, "weight": w,
                        "start_inst": profile.interval_start(i)}
                       for i, w in reps]}
            if args.as_json:
                print(json_mod.dumps(doc, indent=2, sort_keys=True))
                return 0
            print(f"{profile.n_intervals} intervals -> k={clustering.k} "
                  f"(bic {clustering.bic:.1f}, sse {clustering.sse:.4f})")
            for rep in doc["representatives"]:
                print(f"  interval {rep['interval']:>4}  "
                      f"weight {rep['weight']:.4f}  "
                      f"start {rep['start_inst']}")
            return 0

        engine = ExecutionEngine(jobs=args.jobs,
                                 cache=_cache_from_args(args))
        payload = engine.run_sampled(job)
        if args.as_json:
            print(json_mod.dumps(payload, indent=2, sort_keys=True))
            return 0
        sys.stdout.write(render_sample_report(payload))
        if args.action == "run":
            hit = engine.stats.disk_hits > 0
            print(f"  source: {'disk-cache' if hit else 'executed'}")
            stats = engine.stats
            if stats.windows_executed or stats.window_hits:
                print(f"  windows: {stats.windows_executed} executed "
                      f"({args.jobs} workers), "
                      f"{stats.window_hits} from cache")
        return 0
    except SampleError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _cmd_ckpt(args: argparse.Namespace) -> int:
    import json as json_mod

    from .g5.serialize import (Checkpoint, CheckpointError,
                               restore_checkpoint)

    def show(doc: dict) -> None:
        if args.as_json:
            print(json_mod.dumps(doc, indent=2, sort_keys=True))
        else:
            for name, value in doc.items():
                print(f"{name:<16}: {value}")

    try:
        if args.action == "take":
            if args.workload is None or args.at is None:
                print("error: ckpt take needs --workload and --at",
                      file=sys.stderr)
                return 2
            from .sample import take_checkpoints_at

            program = get_workload(args.workload).build(args.scale)
            checkpoint = take_checkpoints_at(
                program, args.workload, [args.at])[args.at]
            checkpoint.save(args.file)
            show({"file": args.file, **checkpoint.describe()})
            return 0
        if args.action == "info":
            show(Checkpoint.load(args.file).describe())
            return 0
        # restore: continue the checkpointed guest on a detailed model.
        checkpoint = Checkpoint.load(args.file)
        workload = get_workload(args.workload or checkpoint.process_name)
        program = workload.build(args.scale)
        system = System(SimConfig(cpu_model=args.cpu, mode="se"))
        system.set_se_workload(program, process_name=workload.name)
        restore_checkpoint(system, checkpoint)
        result = simulate(system)
        show({"file": args.file, "cpu_model": args.cpu,
              "restored_at": checkpoint.committed_insts,
              "exit_cause": result.exit_cause,
              "exit_code": result.exit_code,
              "sim_insts": result.sim_insts,
              "sim_cycles": result.sim_cycles,
              "ipc": round(result.ipc, 4)})
        return 0
    except BrokenPipeError:
        raise                       # handled centrally in main()
    except (CheckpointError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except Exception as exc:  # SampleError from take, KeyError from scale
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ServeConfig, serve

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.jobs,
        max_queue=args.max_queue,
        cache=_cache_from_args(args),
        job_timeout=args.timeout,
        max_retries=args.retries,
        cache_max_bytes=args.cache_max_bytes,
        quiet=not args.verbose,
    )
    config.log = sys.stderr
    return serve(config)


def _cmd_fleet(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    if args.action == "coordinator":
        from .fleet.coordinator import CoordinatorConfig
        from .fleet.http import run_coordinator

        config = CoordinatorConfig(
            host=args.host,
            port=args.port if args.port is not None else 8090,
            heartbeat_timeout=args.heartbeat_timeout,
            max_pending=args.max_pending,
            dispatchers=args.dispatchers,
            quiet=not args.verbose)
        if args.timeout is not None:
            config.job_timeout = args.timeout
        config.log = sys.stderr
        if args.cache_dir is not None:
            config.cost_path = Path(args.cache_dir) / "costs.json"
        return run_coordinator(config)
    if args.action == "worker":
        from .fleet.worker import WorkerConfig, run_worker

        config = WorkerConfig(
            coordinator_url=args.coordinator,
            host=args.host,
            port=args.port if args.port is not None else 0,
            workers=args.jobs,
            max_queue=args.max_queue,
            cache_root=args.cache_dir,
            job_timeout=args.timeout,
            advertise_url=args.advertise_url,
            quiet=not args.verbose)
        config.log = sys.stderr
        return run_worker(config)

    from .exec.costmodel import CostModel
    from .fleet.report import capacity_plan, render_report

    cache = ResultCache(args.cache_dir) if args.cache_dir is not None \
        else ResultCache()
    cost_model = CostModel(cache.costs_path)
    plan = capacity_plan(cost_model, workers=args.workers,
                         workers_per_node=args.jobs_per_worker,
                         target_p99=args.target_p99)
    if args.as_json:
        print(json.dumps(plan, indent=2, sort_keys=True))
    else:
        print(render_report(plan))
    return 0


def _cmd_list() -> int:
    print("workloads:")
    for name, workload in sorted(WORKLOADS.items()):
        print(f"  {name:16s} suite={workload.suite:9s} mode={workload.mode}")
    print("platforms: Intel_Xeon, M1_Pro, M1_Ultra (+ FireSim sweeps)")
    print("figures  :", ", ".join(sorted(FIGURES)))
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    try:
        return _dispatch(_build_parser().parse_args(argv))
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. `repro-g5 cache list | head`);
        # silence the shutdown flush and exit the way a SIGPIPE would.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 128 + 13


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "figs":
        return _cmd_figs(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "tables":
        return _cmd_tables()
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "sample":
        return _cmd_sample(args)
    if args.command == "ckpt":
        return _cmd_ckpt(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "fleet":
        return _cmd_fleet(args)
    if args.command == "lint":
        return _cmd_lint(args)
    return _cmd_list()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
