"""repro.core — the paper's methodology as a reusable library.

Top-Down slot accounting, PMU-style counters, function-level hotspot
profiling, and table/figure formatting.
"""

from .counters import COUNTER_NAMES, CounterSet, read_counters
from .profiler import HotspotReport, analyze_profile
from .report import Figure, Series, Table, format_cell, geomean
from .topdown import TopDownBreakdown, TopDownCounters

__all__ = [
    "COUNTER_NAMES",
    "CounterSet",
    "Figure",
    "HotspotReport",
    "Series",
    "Table",
    "TopDownBreakdown",
    "TopDownCounters",
    "analyze_profile",
    "format_cell",
    "geomean",
    "read_counters",
]
