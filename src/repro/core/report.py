"""Formatting helpers for experiment output.

Every experiment renders its result as a :class:`Table` (rows of named
columns) or a :class:`Series` set (named x/y vectors), printed in plain
text so benchmark logs read like the paper's tables and figure data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence, Union

Cell = Union[str, int, float]


def format_cell(value: Cell) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        return f"{value:.4f}"
    return str(value)


@dataclass
class Table:
    """A simple named-column table with text rendering."""

    title: str
    columns: list[str]
    rows: list[list[Cell]] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"table {self.title!r} expects {len(self.columns)} cells, "
                f"got {len(cells)}")
        self.rows.append(list(cells))

    def column(self, name: str) -> list[Cell]:
        try:
            index = self.columns.index(name)
        except ValueError:
            raise KeyError(
                f"table {self.title!r} has no column {name!r}") from None
        return [row[index] for row in self.rows]

    def to_dicts(self) -> list[dict[str, Cell]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def render(self) -> str:
        header = [self.columns]
        body = [[format_cell(cell) for cell in row] for row in self.rows]
        widths = [max(len(row[i]) for row in header + body)
                  for i in range(len(self.columns))]
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(
            name.ljust(width) for name, width in zip(self.columns, widths)))
        lines.append("  ".join("-" * width for width in widths))
        for row in body:
            lines.append("  ".join(
                cell.ljust(width) for cell, width in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


@dataclass
class Series:
    """One named data series (a line/bar in a figure)."""

    name: str
    x: list[Cell]
    y: list[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.name!r}: x and y lengths differ "
                f"({len(self.x)} vs {len(self.y)})")


@dataclass
class Figure:
    """A set of series reproducing one paper figure."""

    figure_id: str
    caption: str
    series: list[Series] = field(default_factory=list)

    def add_series(self, name: str, x: Sequence[Cell],
                   y: Iterable[float]) -> Series:
        series = Series(name, list(x), [float(v) for v in y])
        self.series.append(series)
        return series

    def get_series(self, name: str) -> Series:
        for series in self.series:
            if series.name == name:
                return series
        raise KeyError(f"figure {self.figure_id} has no series {name!r}")

    def render(self) -> str:
        lines = [f"{self.figure_id}: {self.caption}",
                 "=" * (len(self.figure_id) + len(self.caption) + 2)]
        for series in self.series:
            lines.append(f"[{series.name}]")
            for x, y in zip(series.x, series.y):
                lines.append(f"  {format_cell(x):>24s}  {y:.4f}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's Fig. 1 aggregation)."""
    values = list(values)
    if not values:
        raise ValueError("geomean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))
