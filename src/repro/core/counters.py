"""Performance-counter abstraction (the paper's VTune/perf/M1 layer).

The paper reads hardware PMUs three ways: VTune + perf on the Xeon,
privileged counter reads on the M1, and FireSim's printf counters.  We
expose the same shape: a :class:`CounterSet` of named raw counters
sampled from a finished :class:`~repro.host.cpu.HostRunResult`, plus the
derived metrics (MPKI, miss rates, IPC) the figures plot.  Experiment
code says ``counters["ITLB_MISSES"]`` the way the paper's scripts say
``perf stat -e iTLB-load-misses`` — independent of model internals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from ..host.cpu import HostRunResult

#: Counter names, loosely after perf/VTune event names.
COUNTER_NAMES = (
    "CYCLES",
    "INSTRUCTIONS",
    "UOPS_RETIRED",
    "L1I_MISSES",
    "L1I_ACCESSES",
    "L1D_MISSES",
    "L1D_ACCESSES",
    "L2_MISSES",
    "L2_ACCESSES",
    "LLC_MISSES",
    "LLC_ACCESSES",
    "ITLB_MISSES",
    "ITLB_ACCESSES",
    "DTLB_MISSES",
    "DTLB_ACCESSES",
    "BR_COND",
    "BR_MISP",
    "BTB_LOOKUPS",
    "BTB_MISSES",
    "DSB_UOPS",
    "MITE_UOPS",
    "DRAM_BYTES",
)


@dataclass(frozen=True)
class CounterSet:
    """One sample of raw hardware-style counters."""

    values: Mapping[str, float]

    def __getitem__(self, name: str) -> float:
        try:
            return self.values[name]
        except KeyError:
            raise KeyError(
                f"unknown counter {name!r}; available: "
                f"{sorted(self.values)}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.values

    # -- derived metrics the figures use --------------------------------
    @property
    def ipc(self) -> float:
        return self["INSTRUCTIONS"] / max(1.0, self["CYCLES"])

    def mpki(self, miss_counter: str) -> float:
        return self[miss_counter] / max(1e-9, self["INSTRUCTIONS"] / 1000.0)

    def rate(self, miss_counter: str, access_counter: str) -> float:
        return self[miss_counter] / max(1.0, self[access_counter])

    @property
    def l1i_miss_rate(self) -> float:
        return self.rate("L1I_MISSES", "L1I_ACCESSES")

    @property
    def l1d_miss_rate(self) -> float:
        return self.rate("L1D_MISSES", "L1D_ACCESSES")

    @property
    def itlb_miss_rate(self) -> float:
        return self.rate("ITLB_MISSES", "ITLB_ACCESSES")

    @property
    def dtlb_miss_rate(self) -> float:
        return self.rate("DTLB_MISSES", "DTLB_ACCESSES")

    @property
    def branch_mispredict_rate(self) -> float:
        return self.rate("BR_MISP", "BR_COND")

    @property
    def dsb_coverage(self) -> float:
        total = self["DSB_UOPS"] + self["MITE_UOPS"]
        return self["DSB_UOPS"] / total if total else 0.0


def read_counters(result: "HostRunResult") -> CounterSet:
    """Sample every counter from a finished host run."""
    return CounterSet(dict(result.raw_counters))
