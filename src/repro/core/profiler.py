"""Function-level CPU-time profiling (the paper's Fig. 15 methodology).

Wraps a :class:`~repro.host.cpu.FunctionProfile` with the analyses the
paper performs on its VTune hotspot data: the CDF of the 50 hottest
functions, the hottest-function share, and the total number of distinct
functions executed — the evidence behind "there is no killer function in
gem5".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..host.cpu import FunctionProfile


@dataclass(frozen=True)
class HotspotReport:
    """Summary of one run's function-time distribution."""

    total_functions: int
    hottest: list[tuple[str, float]]     # (name, share of total time)
    cdf: list[float]                     # cumulative share, top-N

    @property
    def hottest_share(self) -> float:
        return self.hottest[0][1] if self.hottest else 0.0

    def coverage_at(self, n: int) -> float:
        """Share of total time covered by the N hottest functions."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if not self.cdf:
            return 0.0
        return self.cdf[min(n, len(self.cdf)) - 1]

    def flatness(self) -> float:
        """1 - hottest share: higher means flatter (no killer function)."""
        return 1.0 - self.hottest_share


def analyze_profile(profile: "FunctionProfile",
                    top_n: int = 50) -> HotspotReport:
    """Produce the Fig.-15-style hotspot report from a function profile."""
    if top_n <= 0:
        raise ValueError(f"top_n must be positive, got {top_n}")
    total = sum(profile.cycles) or 1.0
    hottest = [(name, cycles / total)
               for name, cycles in profile.hottest(top_n)]
    return HotspotReport(
        total_functions=profile.executed_functions(),
        hottest=hottest,
        cdf=profile.cdf(top_n),
    )
