"""Top-Down microarchitectural analysis (Yasin, ISPASS 2014).

The paper's methodology: every pipeline-slot of every cycle is
attributed to exactly one of four level-1 buckets — **retiring**,
**bad speculation**, **front-end bound**, **back-end bound** — and the
front-end bucket splits further into latency (iCache, iTLB, branch
resteers) and bandwidth (MITE vs DSB µop supply) at level 2/3.

:class:`TopDownCounters` is the raw accumulator filled by the host CPU
replay; :class:`TopDownBreakdown` is the derived percentage view that
the experiment harness prints, matching the paper's Figs. 2–5.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TopDownCounters:
    """Raw slot/cycle accounting for one run on one host platform."""

    pipeline_width: int = 4
    retired_uops: int = 0
    bad_spec_uops: int = 0
    # Front-end latency stall cycles, by cause:
    icache_stall_cycles: float = 0.0
    itlb_stall_cycles: float = 0.0
    mispredict_resteer_cycles: float = 0.0
    clear_resteer_cycles: float = 0.0
    unknown_branch_cycles: float = 0.0
    # Front-end bandwidth stall cycles, by µop source:
    mite_bw_cycles: float = 0.0
    dsb_bw_cycles: float = 0.0
    # Back-end stall cycles:
    dcache_stall_cycles: float = 0.0
    dtlb_stall_cycles: float = 0.0
    exec_stall_cycles: float = 0.0

    # ------------------------------------------------------------------
    # derived cycle totals
    # ------------------------------------------------------------------
    @property
    def fe_latency_cycles(self) -> float:
        return (self.icache_stall_cycles + self.itlb_stall_cycles
                + self.mispredict_resteer_cycles + self.clear_resteer_cycles
                + self.unknown_branch_cycles)

    @property
    def fe_bandwidth_cycles(self) -> float:
        return self.mite_bw_cycles + self.dsb_bw_cycles

    @property
    def be_cycles(self) -> float:
        return (self.dcache_stall_cycles + self.dtlb_stall_cycles
                + self.exec_stall_cycles)

    @property
    def base_cycles(self) -> float:
        return (self.retired_uops + self.bad_spec_uops) / self.pipeline_width

    @property
    def total_cycles(self) -> float:
        """The slot-conserving cycle count (see DESIGN.md §4)."""
        return (self.base_cycles + self.fe_latency_cycles
                + self.fe_bandwidth_cycles + self.be_cycles)

    def breakdown(self) -> "TopDownBreakdown":
        width = self.pipeline_width
        total_slots = max(1e-9, width * self.total_cycles)
        fe_lat_slots = width * self.fe_latency_cycles
        fe_bw_slots = width * self.fe_bandwidth_cycles
        return TopDownBreakdown(
            retiring=self.retired_uops / total_slots,
            bad_speculation=self.bad_spec_uops / total_slots,
            frontend_bound=(fe_lat_slots + fe_bw_slots) / total_slots,
            backend_bound=width * self.be_cycles / total_slots,
            fe_latency=fe_lat_slots / total_slots,
            fe_bandwidth=fe_bw_slots / total_slots,
            fe_icache=width * self.icache_stall_cycles / total_slots,
            fe_itlb=width * self.itlb_stall_cycles / total_slots,
            fe_mispredict_resteers=(width * self.mispredict_resteer_cycles
                                    / total_slots),
            fe_clear_resteers=width * self.clear_resteer_cycles / total_slots,
            fe_unknown_branches=(width * self.unknown_branch_cycles
                                 / total_slots),
            fe_mite=width * self.mite_bw_cycles / total_slots,
            fe_dsb=width * self.dsb_bw_cycles / total_slots,
        )


@dataclass(frozen=True)
class TopDownBreakdown:
    """Fractions of total pipeline slots (the paper's stacked bars)."""

    retiring: float
    bad_speculation: float
    frontend_bound: float
    backend_bound: float
    # level 2: front-end split
    fe_latency: float
    fe_bandwidth: float
    # level 3: front-end latency causes
    fe_icache: float
    fe_itlb: float
    fe_mispredict_resteers: float
    fe_clear_resteers: float
    fe_unknown_branches: float
    # level 3: front-end bandwidth sources
    fe_mite: float
    fe_dsb: float

    def level1(self) -> dict[str, float]:
        return {
            "retiring": self.retiring,
            "bad_speculation": self.bad_speculation,
            "frontend_bound": self.frontend_bound,
            "backend_bound": self.backend_bound,
        }

    def fe_latency_breakdown(self) -> dict[str, float]:
        return {
            "icache": self.fe_icache,
            "itlb": self.fe_itlb,
            "mispredict_resteers": self.fe_mispredict_resteers,
            "clear_resteers": self.fe_clear_resteers,
            "unknown_branches": self.fe_unknown_branches,
        }

    def fe_bandwidth_breakdown(self) -> dict[str, float]:
        return {"mite": self.fe_mite, "dsb": self.fe_dsb}

    @property
    def mite_share_of_bandwidth(self) -> float:
        """Fraction of bandwidth-bound cycles waiting on the MITE."""
        total = self.fe_mite + self.fe_dsb
        return self.fe_mite / total if total > 0 else 0.0

    def validate(self, tolerance: float = 1e-6) -> None:
        """Level-1 buckets must account for every slot exactly once."""
        total = (self.retiring + self.bad_speculation
                 + self.frontend_bound + self.backend_bound)
        if abs(total - 1.0) > tolerance:
            raise AssertionError(
                f"top-down level-1 buckets sum to {total}, expected 1.0")
